//! Edits and patches: GEVO's genome representation.
//!
//! An [`Edit`] is one applied mutation operator; a [`Patch`] is an ordered
//! list of edits — the genome of one individual. Patches are applied to
//! the *pristine* kernels every time (GEVO's patch-based representation),
//! and every edit addresses instructions by their stable [`InstId`], so
//! **any subset of a patch is itself a valid patch**. That property is
//! what the paper's Algorithm 1 (weak-edit minimization), Algorithm 2
//! (independent/epistatic separation) and the exhaustive subset analysis
//! of §V-C all rely on.
//!
//! Edits that no longer apply (their target was deleted by an earlier
//! edit in the same patch) are silently skipped, mirroring GEVO.
//!
//! ```
//! use gevo_engine::{Edit, Patch};
//! use gevo_ir::{AddrSpace, KernelBuilder, Operand, Special};
//!
//! let mut b = KernelBuilder::new("k");
//! let out = b.param_ptr("out", AddrSpace::Global);
//! let tid = b.special_i32(Special::ThreadId);
//! let dead = b.add(tid.into(), Operand::ImmI32(9));
//! let addr = b.index_addr(Operand::Param(out), tid.into(), 4);
//! b.store_global_i32(addr.into(), tid.into());
//! b.ret();
//! let pristine = vec![b.finish()];
//!
//! // Delete the dead add; the duplicate edit is skipped, not an error.
//! let del = Edit::Delete { kernel: 0, target: pristine[0].inst_ids()[1] };
//! let patch = Patch::from_edits(vec![del, del]);
//! let (variant, applied) = patch.apply(&pristine);
//! assert_eq!(applied, 1);
//! assert_eq!(variant[0].inst_count(), pristine[0].inst_count() - 1);
//!
//! // Any subset of a patch is itself a valid patch.
//! assert_eq!(patch.without(&del).len(), 1);
//! ```

use gevo_ir::{InstId, Kernel, KernelDelta, Operand, TermKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One mutation operator application. `kernel` indexes the workload's
/// kernel list (multi-kernel programs like ADEPT-V1 and `SIMCoV` evolve all
/// their kernels in one genome, as GEVO does).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Edit {
    /// Remove the instruction.
    Delete {
        /// Kernel index within the workload.
        kernel: usize,
        /// Instruction to remove.
        target: InstId,
    },
    /// Insert a clone of `source` immediately before `before` (`before`
    /// may be a terminator ID, meaning "append at the end of that block").
    Copy {
        /// Kernel index within the workload.
        kernel: usize,
        /// Instruction to clone.
        source: InstId,
        /// Anchor position.
        before: InstId,
    },
    /// Move `source` so it executes immediately before `before`.
    Move {
        /// Kernel index within the workload.
        kernel: usize,
        /// Instruction to relocate.
        source: InstId,
        /// Anchor position.
        before: InstId,
    },
    /// Exchange the positions of two instructions.
    Swap {
        /// Kernel index within the workload.
        kernel: usize,
        /// First instruction.
        a: InstId,
        /// Second instruction.
        b: InstId,
    },
    /// Overwrite `target`'s operation/operands with a clone of `source`
    /// (keeping `target`'s identity).
    Replace {
        /// Kernel index within the workload.
        kernel: usize,
        /// Instruction whose content is overwritten.
        target: InstId,
        /// Instruction providing the new content.
        source: InstId,
    },
    /// Replace one operand of an instruction with a type-compatible
    /// operand.
    OperandReplace {
        /// Kernel index within the workload.
        kernel: usize,
        /// Instruction whose operand changes.
        target: InstId,
        /// Operand position.
        arg: usize,
        /// The replacement operand.
        new: Operand,
    },
    /// Replace the condition of a conditional branch — the edit kind
    /// behind the paper's edits 8 and 10 ("replacing the if condition
    /// with the existing boolean expression", §VI-A).
    CondReplace {
        /// Kernel index within the workload.
        kernel: usize,
        /// The branch terminator's ID.
        term: InstId,
        /// The new condition operand (must be `b1`-typed).
        new: Operand,
    },
}

impl Edit {
    /// The kernel this edit touches.
    #[must_use]
    pub fn kernel(&self) -> usize {
        match self {
            Edit::Delete { kernel, .. }
            | Edit::Copy { kernel, .. }
            | Edit::Move { kernel, .. }
            | Edit::Swap { kernel, .. }
            | Edit::Replace { kernel, .. }
            | Edit::OperandReplace { kernel, .. }
            | Edit::CondReplace { kernel, .. } => *kernel,
        }
    }

    /// Applies this edit to a kernel in place. Returns `true` if the edit
    /// took effect, `false` if it was skipped as inapplicable.
    pub fn apply(&self, k: &mut Kernel) -> bool {
        self.apply_delta(k).0
    }

    /// Applies this edit and additionally reports its [`KernelDelta`] —
    /// the replayable description the delta-compilation layer feeds to
    /// [`CompiledKernel::patch`](gevo_gpu::CompiledKernel::patch).
    ///
    /// The boolean mirrors [`apply`](Self::apply) exactly (`apply` is
    /// implemented on top of this, so the two cannot drift). The delta is
    /// `Some` only for the three *local* edit kinds — delete, operand
    /// replace, condition replace — and only when the edit actually took
    /// effect; structural edits (copy/move/swap/replace) reshape the
    /// instruction stream and always require a full recompile, so they
    /// report `None`. Note `Some` does not mean *patchable*: the delta
    /// carries the old/new operands so [`KernelDelta::is_patchable`] can
    /// make that call downstream.
    pub fn apply_delta(&self, k: &mut Kernel) -> (bool, Option<KernelDelta>) {
        match *self {
            Edit::Delete { target, .. } => match k.remove_inst(target) {
                Some(inst) => {
                    let read_regs = inst.args.iter().any(Operand::is_reg);
                    (
                        true,
                        Some(KernelDelta::RemoveInst {
                            inst: target,
                            read_regs,
                        }),
                    )
                }
                None => (false, None),
            },
            Edit::Copy { source, before, .. } => {
                let Some(pos) = k.locate(source) else {
                    return (false, None);
                };
                let inst = k.inst_at(pos).expect("located").clone();
                let fresh = k.fresh_inst_id();
                let clone = inst.clone_with_id(fresh);
                (insert_before_or_at_term(k, before, clone), None)
            }
            Edit::Move { source, before, .. } => {
                if source == before {
                    return (false, None);
                }
                // Both endpoints must exist up front so a failed insert
                // cannot lose the instruction.
                if k.locate(source).is_none() || !anchor_exists(k, before) {
                    return (false, None);
                }
                let inst = k.remove_inst(source).expect("checked above");
                // The anchor may have been the moved instruction's own
                // neighbor; it still exists because source != before.
                (insert_before_or_at_term(k, before, inst), None)
            }
            Edit::Swap { a, b, .. } => {
                if a == b {
                    return (false, None);
                }
                let (Some(pa), Some(pb)) = (k.locate(a), k.locate(b)) else {
                    return (false, None);
                };
                if pa.block == pb.block {
                    k.blocks[pa.block].instrs.swap(pa.index, pb.index);
                } else {
                    let ia = k.blocks[pa.block].instrs[pa.index].clone();
                    let ib = k.blocks[pb.block].instrs[pb.index].clone();
                    k.blocks[pa.block].instrs[pa.index] = ib;
                    k.blocks[pb.block].instrs[pb.index] = ia;
                }
                (true, None)
            }
            Edit::Replace { target, source, .. } => {
                if target == source {
                    return (false, None);
                }
                let (Some(pt), Some(ps)) = (k.locate(target), k.locate(source)) else {
                    return (false, None);
                };
                let src = k.blocks[ps.block].instrs[ps.index].clone();
                let t = &mut k.blocks[pt.block].instrs[pt.index];
                let keep_id = t.id;
                let keep_loc = t.loc;
                *t = src.clone_with_id(keep_id);
                t.loc = keep_loc;
                (true, None)
            }
            Edit::OperandReplace {
                target, arg, new, ..
            } => {
                let Some(pos) = k.locate(target) else {
                    return (false, None);
                };
                let Some(old) = k.inst_at(pos).expect("located").args.get(arg).copied() else {
                    return (false, None);
                };
                // Type compatibility is enforced at application time so
                // that arbitrary subsets stay verifiable.
                if k.operand_ty(&old) != k.operand_ty(&new) {
                    return (false, None);
                }
                k.blocks[pos.block].instrs[pos.index].args[arg] = new;
                (
                    true,
                    Some(KernelDelta::SetArg {
                        inst: target,
                        arg,
                        old,
                        new,
                    }),
                )
            }
            Edit::CondReplace { term, new, .. } => {
                if k.operand_ty(&new) != gevo_ir::Ty::Bool {
                    return (false, None);
                }
                let Some(t) = k.terminator_mut(term) else {
                    return (false, None);
                };
                match &mut t.kind {
                    TermKind::CondBr { cond, .. } => {
                        let old = *cond;
                        *cond = new;
                        (true, Some(KernelDelta::SetCond { term, old, new }))
                    }
                    _ => (false, None),
                }
            }
        }
    }
}

/// Insert before a body instruction, or at the end of the block whose
/// terminator carries the anchor ID.
fn insert_before_or_at_term(k: &mut Kernel, before: InstId, inst: gevo_ir::Instr) -> bool {
    match k.insert_before(before, inst) {
        Ok(()) => true,
        Err(inst) => {
            // Maybe the anchor is a terminator: append to that block.
            for block in &mut k.blocks {
                if block.term.id == before {
                    block.instrs.push(inst);
                    return true;
                }
            }
            false
        }
    }
}

fn anchor_exists(k: &Kernel, anchor: InstId) -> bool {
    k.locate(anchor).is_some() || k.blocks.iter().any(|b| b.term.id == anchor)
}

impl fmt::Display for Edit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Edit::Delete { kernel, target } => write!(f, "k{kernel}:del {target}"),
            Edit::Copy {
                kernel,
                source,
                before,
            } => write!(f, "k{kernel}:copy {source} -> before {before}"),
            Edit::Move {
                kernel,
                source,
                before,
            } => write!(f, "k{kernel}:move {source} -> before {before}"),
            Edit::Swap { kernel, a, b } => write!(f, "k{kernel}:swap {a} <-> {b}"),
            Edit::Replace {
                kernel,
                target,
                source,
            } => write!(f, "k{kernel}:replace {target} := {source}"),
            Edit::OperandReplace {
                kernel,
                target,
                arg,
                new,
            } => write!(f, "k{kernel}:opnd {target}[{arg}] := {new}"),
            Edit::CondReplace { kernel, term, new } => {
                write!(f, "k{kernel}:cond {term} := {new}")
            }
        }
    }
}

/// An ordered list of edits: one individual's genome.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Patch {
    edits: Vec<Edit>,
}

impl Patch {
    /// The empty patch (the unmodified program).
    #[must_use]
    pub fn empty() -> Patch {
        Patch::default()
    }

    /// A patch from an edit list, in order.
    #[must_use]
    pub fn from_edits(edits: Vec<Edit>) -> Patch {
        Patch { edits }
    }

    /// The edits, in application order.
    #[must_use]
    pub fn edits(&self) -> &[Edit] {
        &self.edits
    }

    /// Number of edits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// True when there are no edits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Appends an edit.
    pub fn push(&mut self, e: Edit) {
        self.edits.push(e);
    }

    /// The patch without the given edit (first occurrence), preserving
    /// order — `S − e` in the paper's algorithms.
    #[must_use]
    pub fn without(&self, e: &Edit) -> Patch {
        let mut edits = self.edits.clone();
        if let Some(i) = edits.iter().position(|x| x == e) {
            edits.remove(i);
        }
        Patch { edits }
    }

    /// The patch without any of the given edits — `S − weaks`.
    #[must_use]
    pub fn without_all(&self, drop: &[Edit]) -> Patch {
        Patch {
            edits: self
                .edits
                .iter()
                .filter(|e| !drop.contains(e))
                .copied()
                .collect(),
        }
    }

    /// The sub-patch containing exactly `keep`, in this patch's order.
    #[must_use]
    pub fn subset(&self, keep: &[Edit]) -> Patch {
        Patch {
            edits: self
                .edits
                .iter()
                .filter(|e| keep.contains(e))
                .copied()
                .collect(),
        }
    }

    /// Applies the patch to pristine kernels, producing the variant.
    /// Inapplicable edits are skipped; the returned count says how many
    /// actually landed.
    #[must_use]
    pub fn apply(&self, pristine: &[Kernel]) -> (Vec<Kernel>, usize) {
        let mut kernels: Vec<Kernel> = pristine.to_vec();
        let mut applied = 0;
        for e in &self.edits {
            let ki = e.kernel();
            if ki < kernels.len() && e.apply(&mut kernels[ki]) {
                applied += 1;
            }
        }
        (kernels, applied)
    }

    /// Stable content hash, for fitness memoization.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        edits_hash(&self.edits)
    }
}

/// The [`Patch::content_hash`] of any edit-list slice. `Vec` and slice
/// hash identically, so `edits_hash(&patch.edits()[..k])` is the hash of
/// the k-edit prefix patch without materializing it — how the
/// evaluator's delta chain looks up a cached parent for each prefix.
pub(crate) fn edits_hash(edits: &[Edit]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    edits.hash(&mut h);
    h.finish()
}

impl FromIterator<Edit> for Patch {
    fn from_iter<T: IntoIterator<Item = Edit>>(iter: T) -> Self {
        Patch {
            edits: iter.into_iter().collect(),
        }
    }
}

impl Extend<Edit> for Patch {
    fn extend<T: IntoIterator<Item = Edit>>(&mut self, iter: T) {
        self.edits.extend(iter);
    }
}

impl fmt::Display for Patch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.edits.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gevo_ir::{AddrSpace, KernelBuilder, Operand, Special};

    fn kernels() -> Vec<Kernel> {
        let mut b = KernelBuilder::new("k");
        let out = b.param_ptr("out", AddrSpace::Global);
        let tid = b.special_i32(Special::ThreadId); // inst 0
        let v = b.mul(tid.into(), Operand::ImmI32(3)); // inst 1
        let w = b.add(v.into(), Operand::ImmI32(1)); // inst 2
        let addr = b.index_addr(Operand::Param(out), tid.into(), 4); // 3,4,5
        b.store_global_i32(addr.into(), w.into()); // inst 6
        b.ret();
        vec![b.finish()]
    }

    fn ids(k: &Kernel) -> Vec<InstId> {
        k.inst_ids()
    }

    #[test]
    fn delete_applies_and_skips() {
        let ks = kernels();
        let target = ids(&ks[0])[1];
        let p = Patch::from_edits(vec![Edit::Delete { kernel: 0, target }]);
        let (out, applied) = p.apply(&ks);
        assert_eq!(applied, 1);
        assert_eq!(out[0].inst_count(), ks[0].inst_count() - 1);

        // Deleting twice: second edit skips.
        let p2 = Patch::from_edits(vec![
            Edit::Delete { kernel: 0, target },
            Edit::Delete { kernel: 0, target },
        ]);
        let (out2, applied2) = p2.apply(&ks);
        assert_eq!(applied2, 1);
        assert_eq!(out2[0].inst_count(), ks[0].inst_count() - 1);
    }

    #[test]
    fn copy_inserts_clone_with_fresh_id() {
        let ks = kernels();
        let all = ids(&ks[0]);
        let p = Patch::from_edits(vec![Edit::Copy {
            kernel: 0,
            source: all[1],
            before: all[2],
        }]);
        let (out, applied) = p.apply(&ks);
        assert_eq!(applied, 1);
        assert_eq!(out[0].inst_count(), ks[0].inst_count() + 1);
        // The clone has a fresh ID beyond the pristine range.
        let fresh: Vec<_> = out[0]
            .inst_ids()
            .into_iter()
            .filter(|id| id.0 >= ks[0].inst_id_bound())
            .collect();
        assert_eq!(fresh.len(), 1);
    }

    #[test]
    fn copy_to_terminator_appends() {
        let ks = kernels();
        let all = ids(&ks[0]);
        let term_id = ks[0].blocks[0].term.id;
        let p = Patch::from_edits(vec![Edit::Copy {
            kernel: 0,
            source: all[0],
            before: term_id,
        }]);
        let (out, applied) = p.apply(&ks);
        assert_eq!(applied, 1);
        let last = out[0].blocks[0].instrs.last().unwrap();
        assert!(last.id.0 >= ks[0].inst_id_bound());
    }

    #[test]
    fn move_reorders() {
        let ks = kernels();
        let all = ids(&ks[0]);
        let p = Patch::from_edits(vec![Edit::Move {
            kernel: 0,
            source: all[0],
            before: all[2],
        }]);
        let (out, applied) = p.apply(&ks);
        assert_eq!(applied, 1);
        assert_eq!(out[0].inst_count(), ks[0].inst_count());
        let order = out[0].inst_ids();
        assert_eq!(order[1], all[0], "moved after inst 1");
    }

    #[test]
    fn swap_exchanges_slots() {
        let ks = kernels();
        let all = ids(&ks[0]);
        let p = Patch::from_edits(vec![Edit::Swap {
            kernel: 0,
            a: all[0],
            b: all[2],
        }]);
        let (out, _) = p.apply(&ks);
        let order = out[0].inst_ids();
        assert_eq!(order[0], all[2]);
        assert_eq!(order[2], all[0]);
    }

    #[test]
    fn replace_keeps_identity() {
        let ks = kernels();
        let all = ids(&ks[0]);
        let p = Patch::from_edits(vec![Edit::Replace {
            kernel: 0,
            target: all[2],
            source: all[1],
        }]);
        let (out, _) = p.apply(&ks);
        let pos = out[0].locate(all[2]).unwrap();
        let inst = out[0].inst_at(pos).unwrap();
        let src_pos = out[0].locate(all[1]).unwrap();
        let src = out[0].inst_at(src_pos).unwrap();
        assert_eq!(inst.op, src.op);
        assert_eq!(inst.args, src.args);
        assert_eq!(inst.id, all[2], "identity preserved");
    }

    #[test]
    fn operand_replace_respects_types() {
        let ks = kernels();
        let all = ids(&ks[0]);
        // inst 1 is `mul tid, 3` — replace the 3 with 7 (same type).
        let good = Edit::OperandReplace {
            kernel: 0,
            target: all[1],
            arg: 1,
            new: Operand::ImmI32(7),
        };
        // Replacing with an i64 immediate is type-incompatible: skipped.
        let bad = Edit::OperandReplace {
            kernel: 0,
            target: all[1],
            arg: 1,
            new: Operand::ImmI64(7),
        };
        let (out, applied) = Patch::from_edits(vec![good, bad]).apply(&ks);
        assert_eq!(applied, 1);
        let pos = out[0].locate(all[1]).unwrap();
        assert_eq!(out[0].inst_at(pos).unwrap().args[1], Operand::ImmI32(7));
    }

    #[test]
    fn subsets_and_without() {
        let ks = kernels();
        let all = ids(&ks[0]);
        let e1 = Edit::Delete {
            kernel: 0,
            target: all[1],
        };
        let e2 = Edit::Delete {
            kernel: 0,
            target: all[2],
        };
        let p = Patch::from_edits(vec![e1, e2]);
        assert_eq!(p.without(&e1).edits(), &[e2]);
        assert_eq!(p.without_all(&[e1, e2]).len(), 0);
        assert_eq!(p.subset(&[e2]).edits(), &[e2]);
    }

    #[test]
    fn every_subset_applies_cleanly() {
        // The foundational property for Algorithms 1/2: all 2^n subsets
        // of a patch apply and verify.
        let ks = kernels();
        let all = ids(&ks[0]);
        let edits = vec![
            Edit::Delete {
                kernel: 0,
                target: all[2],
            },
            Edit::OperandReplace {
                kernel: 0,
                target: all[1],
                arg: 1,
                new: Operand::ImmI32(5),
            },
            Edit::Copy {
                kernel: 0,
                source: all[0],
                before: all[1],
            },
        ];
        let p = Patch::from_edits(edits.clone());
        for mask in 0..(1u32 << edits.len()) {
            let keep: Vec<Edit> = edits
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, e)| *e)
                .collect();
            let sub = p.subset(&keep);
            let (out, _) = sub.apply(&ks);
            assert!(
                gevo_ir::verify::verify(&out[0]).is_ok(),
                "subset {mask:b} fails verification"
            );
        }
    }

    #[test]
    fn content_hash_is_order_sensitive_and_stable() {
        let ks = kernels();
        let all = ids(&ks[0]);
        let e1 = Edit::Delete {
            kernel: 0,
            target: all[1],
        };
        let e2 = Edit::Delete {
            kernel: 0,
            target: all[2],
        };
        let p1 = Patch::from_edits(vec![e1, e2]);
        let p2 = Patch::from_edits(vec![e1, e2]);
        let p3 = Patch::from_edits(vec![e2, e1]);
        assert_eq!(p1.content_hash(), p2.content_hash());
        assert_ne!(p1.content_hash(), p3.content_hash());
    }

    #[test]
    fn prefix_hash_matches_materialized_prefix_patch() {
        let ks = kernels();
        let all = ids(&ks[0]);
        let edits = vec![
            Edit::Delete {
                kernel: 0,
                target: all[2],
            },
            Edit::OperandReplace {
                kernel: 0,
                target: all[1],
                arg: 1,
                new: Operand::ImmI32(5),
            },
            Edit::Delete {
                kernel: 0,
                target: all[0],
            },
        ];
        let p = Patch::from_edits(edits.clone());
        for k in 0..=edits.len() {
            let prefix = Patch::from_edits(edits[..k].to_vec());
            assert_eq!(
                edits_hash(&p.edits()[..k]),
                prefix.content_hash(),
                "prefix of {k} edits"
            );
        }
    }

    #[test]
    fn apply_delta_mirrors_apply_and_captures_old_operands() {
        let ks = kernels();
        let all = ids(&ks[0]);

        // OperandReplace records the displaced operand.
        let opnd = Edit::OperandReplace {
            kernel: 0,
            target: all[1],
            arg: 1,
            new: Operand::ImmI32(7),
        };
        let mut k = ks[0].clone();
        let (applied, delta) = opnd.apply_delta(&mut k);
        assert!(applied);
        assert_eq!(
            delta,
            Some(KernelDelta::SetArg {
                inst: all[1],
                arg: 1,
                old: Operand::ImmI32(3),
                new: Operand::ImmI32(7),
            })
        );
        assert!(delta.unwrap().is_patchable(), "imm → imm swap");

        // Delete records whether the victim read registers.
        let mut k = ks[0].clone();
        let del = Edit::Delete {
            kernel: 0,
            target: all[1], // `mul tid, 3` reads a register
        };
        let (applied, delta) = del.apply_delta(&mut k);
        assert!(applied);
        assert_eq!(
            delta,
            Some(KernelDelta::RemoveInst {
                inst: all[1],
                read_regs: true,
            })
        );
        assert!(!delta.unwrap().is_patchable(), "register reader");

        // A skipped edit reports no delta.
        let (applied, delta) = del.apply_delta(&mut k);
        assert!(!applied);
        assert_eq!(delta, None);

        // Structural edits never report a delta even when they apply.
        let mut k = ks[0].clone();
        let copy = Edit::Copy {
            kernel: 0,
            source: all[1],
            before: all[2],
        };
        let (applied, delta) = copy.apply_delta(&mut k);
        assert!(applied);
        assert_eq!(delta, None);
    }

    #[test]
    fn cond_replace_delta_captures_old_condition() {
        let mut b = KernelBuilder::new("cd");
        let t = b.new_block("t");
        let e = b.new_block("e");
        b.cond_br(Operand::ImmBool(false), t, e);
        b.switch_to(t);
        b.ret();
        b.switch_to(e);
        b.ret();
        let k0 = b.finish();
        let term = k0.blocks[0].term.id;
        let edit = Edit::CondReplace {
            kernel: 0,
            term,
            new: Operand::ImmBool(true),
        };
        let mut k = k0.clone();
        let (applied, delta) = edit.apply_delta(&mut k);
        assert!(applied);
        assert_eq!(
            delta,
            Some(KernelDelta::SetCond {
                term,
                old: Operand::ImmBool(false),
                new: Operand::ImmBool(true),
            })
        );
        assert!(delta.unwrap().is_patchable());
    }

    #[test]
    fn cond_replace_only_touches_cond_br() {
        let mut b = KernelBuilder::new("cb");
        let n = b.param_i32("n");
        let tid = b.special_i32(Special::ThreadId);
        let c = b.icmp_lt(tid.into(), Operand::Param(n));
        let t = b.new_block("t");
        let e = b.new_block("e");
        b.cond_br(c.into(), t, e);
        b.switch_to(t);
        b.ret();
        b.switch_to(e);
        b.ret();
        let k = b.finish();
        let term_id = k.blocks[0].term.id;
        let ret_id = k.blocks[1].term.id;

        let ok = Edit::CondReplace {
            kernel: 0,
            term: term_id,
            new: Operand::ImmBool(true),
        };
        let not_condbr = Edit::CondReplace {
            kernel: 0,
            term: ret_id,
            new: Operand::ImmBool(true),
        };
        let wrong_ty = Edit::CondReplace {
            kernel: 0,
            term: term_id,
            new: Operand::ImmI32(1),
        };
        let (out, applied) =
            Patch::from_edits(vec![ok, not_condbr, wrong_ty]).apply(std::slice::from_ref(&k));
        assert_eq!(applied, 1);
        match out[0].blocks[0].term.kind {
            TermKind::CondBr { cond, .. } => assert_eq!(cond, Operand::ImmBool(true)),
            _ => panic!("terminator shape preserved"),
        }
    }
}
