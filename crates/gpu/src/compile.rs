//! Compile-once lowering of [`Kernel`]s into an executable form.
//!
//! A GEVO-style search launches the *same* kernel variant many times —
//! once per fitness evaluation at minimum, and `SIMCoV` launches each of
//! its eight kernels over a hundred times per evaluation. Before this
//! module existed, every [`crate::Gpu::launch`] re-verified the kernel,
//! rebuilt its CFG and re-resolved every operand through an enum match;
//! all of that work is invariant across launches.
//!
//! [`CompiledKernel::compile`] runs verification and [`Cfg::build`]
//! exactly once and lowers the kernel into a dense, block-ordered
//! instruction stream:
//!
//! * operands become pre-resolved slots — register operands are pre-multiplied
//!   into direct indices into the per-warp register file, immediates are
//!   pre-converted to runtime [`Value`]s (no `F32Bits` decode on the hot
//!   path);
//! * branch targets and each block's reconvergence point (immediate
//!   post-dominator) are baked into flat arrays;
//! * the static issue cost of every scalar instruction is resolved
//!   against the [`GpuSpec`]'s cost table at compile time;
//! * the per-warp register-file image (one typed sentinel per register ×
//!   lane) is prebuilt so warp initialization is a `clone`.
//!
//! A `CompiledKernel` is tied to the spec it was compiled for (the warp
//! width shapes the register file, the cost table is baked in);
//! [`crate::Gpu::launch_compiled`] rejects a mismatched device. Execution
//! semantics are bit-identical to compiling at launch time —
//! [`crate::Gpu::launch`] is now a thin verify-compile-run wrapper over
//! the same interpreter.

use crate::spec::GpuSpec;
use crate::value::Value;
use gevo_ir::verify::{verify, VerifyError};
use gevo_ir::{Cfg, Kernel, KernelDelta, Op, Operand, Param, Reg};
use std::fmt;

/// Sentinel block index meaning "reconverges at thread exit".
pub(crate) const EXIT: u32 = u32::MAX;

/// A pre-resolved operand: everything the interpreter needs to read a
/// value without touching the source kernel.
///
/// Immediates are split per type rather than stored as one [`Value`]
/// payload: nesting `Value` here lets rustc niche-pack the enum
/// (folding this discriminant into `Value`'s tag ranges), and the
/// resulting multi-compare decode on every operand read measurably
/// slows the interpreter. The flat shape keeps a plain one-byte tag —
/// the same dispatch cost as the IR's `Operand` — while still baking
/// in the pre-multiplied register base and the decoded `f32`.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Slot {
    // PartialEq is manual (bitwise on `ImmF32`): the differential test
    // layer compares compiled streams for *bit* identity, and a NaN
    // float immediate must compare equal to itself there.
    /// Register-file base index, pre-multiplied (`reg × lanes`); add the
    /// lane to address one thread's copy.
    Reg(u32),
    /// `i32` immediate.
    ImmI32(i32),
    /// `i64` immediate.
    ImmI64(i64),
    /// `f32` immediate, already decoded from its `F32Bits`.
    ImmF32(f32),
    /// `b1` immediate.
    ImmBool(bool),
    /// Hardware special register (lane-dependent, resolved at execution).
    Special(gevo_ir::Special),
    /// Kernel parameter index (resolved against the launch's arguments).
    Param(u16),
}

impl PartialEq for Slot {
    fn eq(&self, other: &Slot) -> bool {
        match (self, other) {
            (Slot::Reg(a), Slot::Reg(b)) => a == b,
            (Slot::ImmI32(a), Slot::ImmI32(b)) => a == b,
            (Slot::ImmI64(a), Slot::ImmI64(b)) => a == b,
            (Slot::ImmF32(a), Slot::ImmF32(b)) => a.to_bits() == b.to_bits(),
            (Slot::ImmBool(a), Slot::ImmBool(b)) => a == b,
            (Slot::Special(a), Slot::Special(b)) => a == b,
            (Slot::Param(a), Slot::Param(b)) => a == b,
            _ => false,
        }
    }
}

impl Slot {
    /// True when reading this slot yields the same value in **every**
    /// lane of a warp: immediates and parameters trivially, and the
    /// specials that do not depend on the lane (block/grid geometry and
    /// the warp's own id — every lane of a warp shares its warp id).
    /// Registers are never statically uniform (lanes own private
    /// copies), and `ThreadId`/`LaneId` are lane-dependent by
    /// definition.
    ///
    /// The interpreter's uniform-branch fast path keys off this: a
    /// conditional branch whose predicate slot is warp-uniform can be
    /// decided with a single read — divergence is statically
    /// impossible, so the per-lane predicate loop and the divergence
    /// bookkeeping are skipped entirely.
    pub(crate) fn is_warp_uniform(&self) -> bool {
        use gevo_ir::Special;
        match self {
            Slot::Reg(_) => false,
            Slot::ImmI32(_)
            | Slot::ImmI64(_)
            | Slot::ImmF32(_)
            | Slot::ImmBool(_)
            | Slot::Param(_) => true,
            Slot::Special(s) => !matches!(s, Special::ThreadId | Special::LaneId),
        }
    }
}

/// Sentinel for [`CInst::dst`]: the instruction has no destination.
pub(crate) const NO_DST: u32 = u32::MAX;

/// Pre-decoded dispatch class of a [`CInst`], stored in the padding
/// byte after [`CInst::op`] (so it is free, layout-wise). The
/// interpreter's per-instruction dispatch matches on this one-byte tag
/// — a dense 8-way jump — instead of re-deriving the class from `Op`'s
/// payload-carrying discriminant on every executed instruction; the
/// `Op` payload (space, type, predicate…) is only decoded inside the
/// arm that needs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpClass {
    /// Plain per-lane compute op (the `exec_scalar` family).
    Scalar,
    /// `__syncthreads`.
    Sync,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Atomic read-modify-write.
    Atomic,
    /// Warp shuffle.
    Shfl,
    /// `ballot_sync`.
    Ballot,
    /// `activemask`.
    ActiveMask,
}

/// Classifies an op once, at compile time.
fn op_class(op: Op) -> OpClass {
    match op {
        Op::SyncThreads => OpClass::Sync,
        Op::Load { .. } => OpClass::Load,
        Op::Store { .. } => OpClass::Store,
        Op::AtomicAdd { .. } | Op::AtomicMax { .. } | Op::AtomicCas { .. } => OpClass::Atomic,
        Op::ShflSync | Op::ShflUpSync => OpClass::Shfl,
        Op::BallotSync => OpClass::Ballot,
        Op::ActiveMask => OpClass::ActiveMask,
        _ => OpClass::Scalar,
    }
}

/// One lowered instruction in the flattened stream.
///
/// `repr(C)` with this exact field order packs the struct to 64 bytes —
/// one cache line per instruction (the interpreter's fetch granularity)
/// instead of the 72 bytes rustc's default ordering produces with an
/// `Option<u32>` destination. `dst` uses [`NO_DST`] instead of `Option`
/// to make that possible; register-file bases never reach `u32::MAX`
/// (the file is `regs × lanes` values long and allocation would fail
/// far earlier).
#[derive(Debug, Clone, PartialEq)]
#[repr(C)]
pub(crate) struct CInst {
    /// The operation (shared with the IR; `Copy` and match-dispatched).
    pub op: Op,
    /// Pre-decoded dispatch class of `op` (fills `op`'s padding byte).
    pub tag: OpClass,
    /// Destination register-file base index, pre-multiplied;
    /// [`NO_DST`] when the op writes no register.
    pub dst: u32,
    /// Pre-resolved operands; only the first `op.arity()` are meaningful.
    pub args: [Slot; 3],
    /// Static issue cost of a scalar op, baked from the spec's cost
    /// table (ignored by ops whose cost is runtime-dependent).
    pub cost: u64,
}

/// A lowered block terminator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum CTerm {
    /// Unconditional jump.
    Br(u32),
    /// Two-way conditional jump with a pre-resolved condition.
    CondBr {
        /// Branch predicate slot.
        cond: Slot,
        /// Successor when true.
        if_true: u32,
        /// Successor when false.
        if_false: u32,
    },
    /// Thread exit.
    Ret,
}

/// A kernel lowered for repeated launching: verification and CFG
/// analysis already done, operands and costs pre-resolved.
///
/// Compile once with [`CompiledKernel::compile`], launch many times with
/// [`crate::Gpu::launch_compiled`]. See the module docs for what is
/// precomputed.
///
/// Equality compares every lowered table — instruction stream, bounds,
/// terminators, reconvergence, register file — so the delta-compilation
/// differential suite can assert that a [`patch`](Self::patch)ed kernel
/// is byte-for-byte what a full recompile produces.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    /// Kernel name (diagnostics only).
    pub(crate) name: String,
    /// Formal parameters, kept for launch-time argument validation.
    pub(crate) params: Vec<Param>,
    /// Static shared-memory declaration.
    pub(crate) shared_bytes: u32,
    /// Warp width this kernel was compiled for (register-file stride).
    pub(crate) lanes: u32,
    /// Fingerprint of the cost table baked into [`CInst::cost`], checked
    /// against the launching device.
    pub(crate) costs: crate::spec::CostModel,
    /// Dense block-ordered instruction stream.
    pub(crate) code: Vec<CInst>,
    /// Per-block half-open bounds into `code`; length `blocks + 1`.
    pub(crate) block_bounds: Vec<u32>,
    /// Per-block lowered terminator.
    pub(crate) terms: Vec<CTerm>,
    /// Per-block reconvergence target (immediate post-dominator), with
    /// [`EXIT`] for blocks that reconverge only at thread exit.
    pub(crate) reconv: Vec<u32>,
    /// Per-block flag: the terminator is a [`CTerm::CondBr`] whose
    /// condition slot is statically warp-uniform
    /// ([`Slot::is_warp_uniform`]), so the branch can never diverge and
    /// the interpreter decides it with a single operand read. `false`
    /// for unconditional terminators.
    pub(crate) uniform_cond: Vec<bool>,
    /// Prebuilt per-warp register-file image: `regs × lanes` typed
    /// sentinels, reg-major.
    pub(crate) reg_file: Vec<Value>,
    /// Source [`gevo_ir::InstId`] of each entry in `code` — the handle
    /// [`Self::patch`] uses to find a delta's target in the flattened
    /// stream (DCE may have dropped it; absence is meaningful).
    pub(crate) src_ids: Vec<u32>,
    /// Source [`gevo_ir::InstId`] of each block's terminator, for
    /// condition-replacement patches.
    pub(crate) term_ids: Vec<u32>,
}

/// Why [`CompiledKernel::patch`] declined to patch and the caller must
/// fall back to a full recompile. Refusal is the *designed* outcome for
/// edits outside the eligibility contract (DESIGN.md §3.7) — it is not
/// an error in the failure sense, just the slow path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchRefusal {
    /// The delta involves a register operand, so it can change the DCE
    /// use-set; only a full recompile sees that globally.
    RegisterInvolved,
    /// The delta's operand index is outside the instruction's arity.
    BadArgIndex,
    /// The targeted terminator does not exist in this compiled kernel.
    NoSuchTerminator,
    /// The targeted terminator is not a conditional branch.
    NotACondBr,
}

impl fmt::Display for PatchRefusal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PatchRefusal::RegisterInvolved => "delta involves a register operand",
            PatchRefusal::BadArgIndex => "operand index out of range",
            PatchRefusal::NoSuchTerminator => "no terminator with that id",
            PatchRefusal::NotACondBr => "terminator is not a conditional branch",
        };
        f.write_str(s)
    }
}

impl CompiledKernel {
    /// Verifies `kernel` and lowers it for execution on devices matching
    /// `spec` (same warp width and cost table).
    ///
    /// # Errors
    /// Returns the structural defect if the kernel fails verification —
    /// the same check [`crate::Gpu::launch`] has always applied.
    pub fn compile(kernel: &Kernel, spec: &GpuSpec) -> Result<CompiledKernel, VerifyError> {
        verify(kernel)?;
        let cfg = Cfg::build(kernel);
        let lanes = spec.warp_size;

        let mut code = Vec::with_capacity(kernel.inst_count());
        let mut src_ids = Vec::with_capacity(kernel.inst_count());
        let mut block_bounds = Vec::with_capacity(kernel.blocks.len() + 1);
        let mut terms = Vec::with_capacity(kernel.blocks.len());
        let mut term_ids = Vec::with_capacity(kernel.blocks.len());
        block_bounds.push(0u32);
        for block in &kernel.blocks {
            for inst in &block.instrs {
                let mut args = [Slot::ImmI32(0); 3];
                for (i, a) in inst.args.iter().enumerate() {
                    args[i] = lower_operand(a, lanes);
                }
                code.push(CInst {
                    op: inst.op,
                    tag: op_class(inst.op),
                    dst: inst.dst.map_or(NO_DST, |r| reg_base(r, lanes)),
                    args,
                    cost: scalar_cost(inst.op, spec),
                });
                src_ids.push(inst.id.0);
            }
            term_ids.push(block.term.id.0);
            block_bounds.push(u32::try_from(code.len()).expect("code stream fits u32"));
            terms.push(match block.term.kind {
                gevo_ir::TermKind::Br(t) => CTerm::Br(t.0),
                gevo_ir::TermKind::CondBr {
                    cond,
                    if_true,
                    if_false,
                } => CTerm::CondBr {
                    cond: lower_operand(&cond, lanes),
                    if_true: if_true.0,
                    if_false: if_false.0,
                },
                gevo_ir::TermKind::Ret => CTerm::Ret,
            });
        }

        let uniform_cond = terms
            .iter()
            .map(|t| matches!(t, CTerm::CondBr { cond, .. } if cond.is_warp_uniform()))
            .collect();

        let reconv = (0..kernel.blocks.len())
            .map(|b| {
                cfg.reconvergence(gevo_ir::BlockId(u32::try_from(b).expect("block idx")))
                    .map_or(EXIT, |r| r.0)
            })
            .collect();

        let mut reg_file = Vec::with_capacity(kernel.reg_count() * lanes as usize);
        for r in 0..kernel.reg_count() {
            let sentinel = Value::sentinel(kernel.reg_ty(Reg(u32::try_from(r).expect("reg idx"))));
            for _ in 0..lanes {
                reg_file.push(sentinel);
            }
        }

        Ok(CompiledKernel {
            name: kernel.name.clone(),
            params: kernel.params.clone(),
            shared_bytes: kernel.shared_bytes,
            lanes,
            costs: spec.costs.clone(),
            code,
            block_bounds,
            terms,
            reconv,
            uniform_cond,
            reg_file,
            src_ids,
            term_ids,
        })
    }

    /// Replays a patch-eligible [`KernelDelta`] on this compiled image,
    /// producing the kernel a full recompile of the edited IR would —
    /// without re-running verify, CFG analysis, or lowering.
    ///
    /// Targets are located by stable [`gevo_ir::InstId`]. A target that
    /// is absent from the stream was eliminated by DCE in the parent; a
    /// use-set-preserving delta cannot resurrect it, so the patch is a
    /// no-op clone — exactly what recompiling the edited kernel yields.
    ///
    /// # Errors
    /// Refuses (see [`PatchRefusal`]) whenever equivalence with a full
    /// recompile is not guaranteed; the caller must recompile. Refusal
    /// is deliberately conservative — it is always sound to take the
    /// slow path.
    pub fn patch(&self, delta: &KernelDelta) -> Result<CompiledKernel, PatchRefusal> {
        if !delta.is_patchable() {
            return Err(PatchRefusal::RegisterInvolved);
        }
        match *delta {
            KernelDelta::SetArg { inst, arg, new, .. } => {
                let Some(idx) = self.src_ids.iter().position(|&id| id == inst.0) else {
                    return Ok(self.clone()); // DCE'd in the parent; still dead.
                };
                if arg >= self.code[idx].op.arity() {
                    return Err(PatchRefusal::BadArgIndex);
                }
                let mut out = self.clone();
                out.code[idx].args[arg] = lower_operand(&new, self.lanes);
                Ok(out)
            }
            KernelDelta::SetCond { term, new, .. } => {
                let Some(b) = self.term_ids.iter().position(|&id| id == term.0) else {
                    return Err(PatchRefusal::NoSuchTerminator);
                };
                let mut out = self.clone();
                let CTerm::CondBr { cond, .. } = &mut out.terms[b] else {
                    return Err(PatchRefusal::NotACondBr);
                };
                *cond = lower_operand(&new, self.lanes);
                out.uniform_cond[b] = cond.is_warp_uniform();
                Ok(out)
            }
            KernelDelta::RemoveInst { inst, .. } => {
                let Some(idx) = self.src_ids.iter().position(|&id| id == inst.0) else {
                    return Ok(self.clone()); // Already DCE'd away.
                };
                let mut out = self.clone();
                out.code.remove(idx);
                out.src_ids.remove(idx);
                let cut = u32::try_from(idx).expect("code stream fits u32");
                for bound in &mut out.block_bounds {
                    if *bound > cut {
                        *bound -= 1;
                    }
                }
                Ok(out)
            }
        }
    }

    /// The kernel's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Formal parameters (launch arguments are validated against these).
    #[must_use]
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Declared shared-memory bytes per block.
    #[must_use]
    pub fn shared_bytes(&self) -> u32 {
        self.shared_bytes
    }

    /// Warp width this kernel was compiled for.
    #[must_use]
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// Number of body instructions in the flattened stream.
    #[must_use]
    pub fn inst_count(&self) -> usize {
        self.code.len()
    }

    /// Number of basic blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.terms.len()
    }

    /// True when this kernel can execute on a device with the given spec:
    /// the warp width matches the register-file stride and the baked
    /// costs match the device's table.
    #[must_use]
    pub fn matches_spec(&self, spec: &GpuSpec) -> bool {
        self.lanes == spec.warp_size && self.costs == spec.costs
    }
}

/// Register-file base index for a register at a given warp width.
fn reg_base(r: Reg, lanes: u32) -> u32 {
    u32::try_from(u64::from(r.0) * u64::from(lanes)).expect("register file fits u32")
}

/// Lowers one IR operand to its pre-resolved slot.
fn lower_operand(op: &Operand, lanes: u32) -> Slot {
    match op {
        Operand::Reg(r) => Slot::Reg(reg_base(*r, lanes)),
        Operand::ImmI32(v) => Slot::ImmI32(*v),
        Operand::ImmI64(v) => Slot::ImmI64(*v),
        Operand::ImmF32(v) => Slot::ImmF32(v.value()),
        Operand::ImmBool(v) => Slot::ImmBool(*v),
        Operand::Special(s) => Slot::Special(*s),
        Operand::Param(p) => Slot::Param(*p),
    }
}

/// The static issue cost of a scalar op — the same table
/// `BlockExec::exec_scalar` used to consult per execution, resolved once.
fn scalar_cost(op: Op, spec: &GpuSpec) -> u64 {
    use gevo_ir::{FloatBinOp, IntBinOp};
    match op {
        Op::IBin(IntBinOp::Mul) => spec.costs.imul,
        Op::IBin(IntBinOp::Div | IntBinOp::Rem) => spec.costs.idiv,
        Op::IBin(_) => spec.costs.alu,
        Op::FBin(FloatBinOp::Div) => spec.costs.fdiv,
        Op::FBin(_) => spec.costs.falu,
        Op::RngNext => spec.costs.rng,
        _ => spec.costs.alu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gevo_ir::{AddrSpace, KernelBuilder, Special};

    /// Layout regression guard: the interpreter indexes `code` per
    /// executed instruction, so `CInst` staying compact (and `Slot`
    /// staying a flat-tagged 16 bytes, see its doc comment) is a
    /// performance invariant, not an accident.
    #[test]
    fn lowered_types_stay_compact() {
        assert_eq!(std::mem::size_of::<Slot>(), 16);
        assert_eq!(
            std::mem::size_of::<CInst>(),
            64,
            "one cache line (the OpClass tag must live in Op's padding)"
        );
        assert_eq!(std::mem::size_of::<OpClass>(), 1, "tag is one byte");
        assert!(std::mem::size_of::<CTerm>() <= 24);
    }

    #[test]
    fn uniform_cond_classifies_slots() {
        use gevo_ir::Special;
        assert!(Slot::ImmBool(true).is_warp_uniform());
        assert!(Slot::ImmI32(3).is_warp_uniform());
        assert!(Slot::Param(0).is_warp_uniform());
        assert!(Slot::Special(Special::BlockId).is_warp_uniform());
        assert!(Slot::Special(Special::WarpId).is_warp_uniform());
        assert!(!Slot::Special(Special::ThreadId).is_warp_uniform());
        assert!(!Slot::Special(Special::LaneId).is_warp_uniform());
        assert!(!Slot::Reg(0).is_warp_uniform());
    }

    #[test]
    fn compile_bakes_uniform_cond_flags() {
        // diamond_kernel branches on `tid < 4` — lane-dependent, so its
        // entry block must NOT be flagged uniform.
        let k = diamond_kernel();
        let spec = GpuSpec::p100().scaled(8);
        let ck = CompiledKernel::compile(&k, &spec).expect("verifies");
        assert_eq!(ck.uniform_cond.len(), ck.block_count());
        assert!(!ck.uniform_cond.iter().any(|&u| u));

        // An immediate-boolean condition — what the GA's `CondReplace`
        // edits inject (e.g. the v0 init-skip replaces a branch cond
        // with `ImmBool(false)`) — IS statically warp-uniform.
        let mut b = KernelBuilder::new("ub");
        let out = b.param_ptr("out", AddrSpace::Global);
        let t = b.new_block("t");
        let j = b.new_block("j");
        b.cond_br(Operand::ImmBool(false), t, j);
        b.switch_to(t);
        b.br(j);
        b.switch_to(j);
        let tid = b.special_i32(Special::ThreadId);
        let addr = b.index_addr(Operand::Param(out), tid.into(), 4);
        b.store_global_i32(addr.into(), tid.into());
        b.ret();
        let uk = b.finish();
        let uck = CompiledKernel::compile(&uk, &spec).expect("verifies");
        assert!(uck.uniform_cond[0], "immediate cond is uniform");
        assert!(!uck.uniform_cond[1], "Br block is not flagged");
    }

    fn diamond_kernel() -> Kernel {
        let mut b = KernelBuilder::new("diamond");
        let out = b.param_ptr("out", AddrSpace::Global);
        let tid = b.special_i32(Special::ThreadId);
        let cond = b.icmp_lt(tid.into(), Operand::ImmI32(4));
        let then_b = b.new_block("t");
        let else_b = b.new_block("e");
        let join_b = b.new_block("j");
        b.cond_br(cond.into(), then_b, else_b);
        b.switch_to(then_b);
        b.br(join_b);
        b.switch_to(else_b);
        b.br(join_b);
        b.switch_to(join_b);
        let addr = b.index_addr(Operand::Param(out), tid.into(), 4);
        b.store_global_i32(addr.into(), tid.into());
        b.ret();
        b.finish()
    }

    #[test]
    fn compile_flattens_blocks_in_order() {
        let k = diamond_kernel();
        let spec = GpuSpec::p100().scaled(8);
        let ck = CompiledKernel::compile(&k, &spec).expect("verifies");
        assert_eq!(ck.block_count(), k.blocks.len());
        assert_eq!(ck.inst_count(), k.inst_count());
        assert_eq!(ck.block_bounds.len(), k.blocks.len() + 1);
        // Bounds are monotone and partition the stream.
        for w in ck.block_bounds.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(*ck.block_bounds.last().unwrap() as usize, ck.code.len());
    }

    #[test]
    fn compile_bakes_reconvergence() {
        let k = diamond_kernel();
        let spec = GpuSpec::p100().scaled(8);
        let ck = CompiledKernel::compile(&k, &spec).expect("verifies");
        // Entry's divergent branch reconverges at the join (block 3).
        assert_eq!(ck.reconv[0], 3);
        // The ret block reconverges only at exit.
        assert_eq!(ck.reconv[3], EXIT);
    }

    #[test]
    fn compile_prebuilds_register_file() {
        let k = diamond_kernel();
        let spec = GpuSpec::p100().scaled(8);
        let ck = CompiledKernel::compile(&k, &spec).expect("verifies");
        assert_eq!(ck.reg_file.len(), k.reg_count() * 8);
        for r in 0..k.reg_count() {
            let want = Value::sentinel(k.reg_ty(Reg(u32::try_from(r).unwrap())));
            for lane in 0..8 {
                assert_eq!(ck.reg_file[r * 8 + lane], want);
            }
        }
    }

    #[test]
    fn compile_rejects_broken_kernels() {
        let mut k = diamond_kernel();
        // Corrupt an operand list to the wrong arity.
        k.blocks[3].instrs[0].args.clear();
        let spec = GpuSpec::p100().scaled(8);
        assert!(CompiledKernel::compile(&k, &spec).is_err());
    }

    /// Finds the id of the first instruction satisfying a predicate.
    fn find_inst(k: &Kernel, pred: impl Fn(&gevo_ir::Instr) -> bool) -> gevo_ir::InstId {
        k.blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .find(|i| pred(i))
            .expect("instruction present")
            .id
    }

    #[test]
    fn patch_set_arg_matches_full_recompile() {
        let spec = GpuSpec::p100().scaled(8);
        let k = diamond_kernel();
        let parent = CompiledKernel::compile(&k, &spec).expect("verifies");

        // Retarget the icmp's immediate: `tid < 4` → `tid < 2`.
        let id = find_inst(&k, |i| matches!(i.op, Op::Icmp(_)));
        let delta = KernelDelta::SetArg {
            inst: id,
            arg: 1,
            old: Operand::ImmI32(4),
            new: Operand::ImmI32(2),
        };
        let patched = parent.patch(&delta).expect("eligible");

        let mut edited = k.clone();
        for b in &mut edited.blocks {
            for i in &mut b.instrs {
                if i.id == id {
                    i.args[1] = Operand::ImmI32(2);
                }
            }
        }
        let recompiled = CompiledKernel::compile(&edited, &spec).expect("verifies");
        assert_eq!(patched, recompiled);
        assert_ne!(patched, parent, "the patch actually changed the stream");
    }

    #[test]
    fn patch_remove_inst_matches_full_recompile() {
        let spec = GpuSpec::p100().scaled(8);
        // A kernel with a register-free instruction in its first block.
        let mut b = KernelBuilder::new("rm");
        let out = b.param_ptr("out", AddrSpace::Global);
        let _unused = b.add(Operand::ImmI32(1), Operand::ImmI32(2));
        let tid = b.special_i32(Special::ThreadId);
        let addr = b.index_addr(Operand::Param(out), tid.into(), 4);
        b.store_global_i32(addr.into(), tid.into());
        b.ret();
        let k = b.finish();
        let parent = CompiledKernel::compile(&k, &spec).expect("verifies");

        let id = find_inst(&k, |i| {
            matches!(i.op, Op::IBin(gevo_ir::IntBinOp::Add)) && !i.args.iter().any(Operand::is_reg)
        });
        let delta = KernelDelta::RemoveInst {
            inst: id,
            read_regs: false,
        };
        let patched = parent.patch(&delta).expect("eligible");

        let mut edited = k.clone();
        for blk in &mut edited.blocks {
            blk.instrs.retain(|i| i.id != id);
        }
        let recompiled = CompiledKernel::compile(&edited, &spec).expect("verifies");
        assert_eq!(patched, recompiled);
        assert_eq!(patched.inst_count(), parent.inst_count() - 1);
    }

    #[test]
    fn patch_set_cond_matches_recompile_and_updates_uniform_flag() {
        let spec = GpuSpec::p100().scaled(8);
        let mut b = KernelBuilder::new("sc");
        let out = b.param_ptr("out", AddrSpace::Global);
        let t = b.new_block("t");
        let j = b.new_block("j");
        b.cond_br(Operand::ImmBool(false), t, j);
        b.switch_to(t);
        b.br(j);
        b.switch_to(j);
        let tid = b.special_i32(Special::ThreadId);
        let addr = b.index_addr(Operand::Param(out), tid.into(), 4);
        b.store_global_i32(addr.into(), tid.into());
        b.ret();
        let k = b.finish();
        let parent = CompiledKernel::compile(&k, &spec).expect("verifies");

        let term = k.blocks[0].term.id;
        let delta = KernelDelta::SetCond {
            term,
            old: Operand::ImmBool(false),
            new: Operand::ImmBool(true),
        };
        let patched = parent.patch(&delta).expect("eligible");

        let mut edited = k.clone();
        if let gevo_ir::TermKind::CondBr { cond, .. } = &mut edited.blocks[0].term.kind {
            *cond = Operand::ImmBool(true);
        }
        let recompiled = CompiledKernel::compile(&edited, &spec).expect("verifies");
        assert_eq!(patched, recompiled);
        assert!(patched.uniform_cond[0], "flag recomputed for the new cond");
    }

    #[test]
    fn patch_of_dce_eliminated_target_is_a_noop() {
        let spec = GpuSpec::p100().scaled(8);
        let mut b = KernelBuilder::new("dce");
        let out = b.param_ptr("out", AddrSpace::Global);
        let dead = b.add(Operand::ImmI32(1), Operand::ImmI32(2));
        let tid = b.special_i32(Special::ThreadId);
        let addr = b.index_addr(Operand::Param(out), tid.into(), 4);
        b.store_global_i32(addr.into(), tid.into());
        b.ret();
        let k = b.finish();
        let id = find_inst(&k, |i| i.dst == Some(dead));

        // The pipeline compiles the DCE'd kernel; `dead` is gone there.
        let mut slim = k.clone();
        gevo_ir::transform::dce(&mut slim);
        let parent = CompiledKernel::compile(&slim, &spec).expect("verifies");
        let delta = KernelDelta::SetArg {
            inst: id,
            arg: 0,
            old: Operand::ImmI32(1),
            new: Operand::ImmI32(7),
        };
        let patched = parent.patch(&delta).expect("eligible");
        assert_eq!(patched, parent, "editing a dead instruction is a no-op");
    }

    #[test]
    fn patch_refuses_outside_the_eligibility_contract() {
        let spec = GpuSpec::p100().scaled(8);
        let k = diamond_kernel();
        let parent = CompiledKernel::compile(&k, &spec).expect("verifies");
        let id = find_inst(&k, |i| matches!(i.op, Op::Icmp(_)));

        // Register on either side of a replacement.
        let reg_in = KernelDelta::SetArg {
            inst: id,
            arg: 0,
            old: Operand::ImmI32(4),
            new: Operand::Reg(Reg(0)),
        };
        assert_eq!(parent.patch(&reg_in), Err(PatchRefusal::RegisterInvolved));

        // Operand index beyond the op's arity.
        let bad_idx = KernelDelta::SetArg {
            inst: id,
            arg: 2,
            old: Operand::ImmI32(4),
            new: Operand::ImmI32(5),
        };
        assert_eq!(parent.patch(&bad_idx), Err(PatchRefusal::BadArgIndex));

        // A register-reading deletion can change other instructions' DCE
        // fate; must recompile.
        let reads = KernelDelta::RemoveInst {
            inst: id,
            read_regs: true,
        };
        assert_eq!(parent.patch(&reads), Err(PatchRefusal::RegisterInvolved));

        // Condition replacement on a non-CondBr terminator (the join
        // block ends in Ret) and on a terminator id that does not exist.
        let ret_term = k.blocks[3].term.id;
        let not_cond = KernelDelta::SetCond {
            term: ret_term,
            old: Operand::ImmBool(true),
            new: Operand::ImmBool(false),
        };
        assert_eq!(parent.patch(&not_cond), Err(PatchRefusal::NotACondBr));
        let missing = KernelDelta::SetCond {
            term: gevo_ir::InstId(9999),
            old: Operand::ImmBool(true),
            new: Operand::ImmBool(false),
        };
        assert_eq!(parent.patch(&missing), Err(PatchRefusal::NoSuchTerminator));
    }

    #[test]
    fn spec_match_checks_lanes_and_costs() {
        let k = diamond_kernel();
        let spec8 = GpuSpec::p100().scaled(8);
        let ck = CompiledKernel::compile(&k, &spec8).expect("verifies");
        assert!(ck.matches_spec(&spec8));
        assert!(!ck.matches_spec(&GpuSpec::p100()), "32-lane device");
        let mut other = spec8;
        other.costs.alu = 99;
        assert!(!ck.matches_spec(&other), "different cost table");
    }
}
