//! Island-model evolution: N subpopulations with periodic migration.
//!
//! The paper's GA (§III-E) is a single panmictic population. Follow-up
//! work on evolutionary kernel search scales by running several
//! independently-seeded subpopulations ("islands") that exchange their
//! elite individuals on a fixed cadence: islands explore different
//! basins, migration spreads building blocks, and the sharded fitness
//! cache ([`crate::fitness`]) lets all of them evaluate concurrently
//! without contending on one lock.
//!
//! [`run_islands`] is the entry point; [`crate::run_ga`] is the N=1
//! special case of the same loop (bit-for-bit: island 0 consumes the
//! master seed exactly like the old single-population engine, so
//! existing seeds reproduce their historical results).
//!
//! Budget semantics: [`GaConfig::population`] is the **total** across
//! islands — `IslandConfig { islands: 4, .. }` over a population of 32
//! runs four islands of eight. Comparing N=1 to N=4 at the same
//! `GaConfig` therefore compares equal evaluation budgets.
//!
//! ```
//! use gevo_engine::{run_islands, GaConfig, IslandConfig, Workload, EvalOutcome};
//! use gevo_gpu::LaunchStats;
//! use gevo_ir::{AddrSpace, Kernel, KernelBuilder, Operand, Special};
//!
//! /// Fitness = instructions remaining: the islands race to delete code.
//! struct Toy { kernels: Vec<Kernel> }
//! impl Workload for Toy {
//!     fn name(&self) -> &str { "toy" }
//!     fn kernels(&self) -> &[Kernel] { &self.kernels }
//!     fn evaluate(&self, ks: &[Kernel], _seed: u64) -> EvalOutcome {
//!         EvalOutcome::pass(10.0 + ks[0].inst_count() as f64, LaunchStats::default())
//!     }
//! }
//!
//! let mut b = KernelBuilder::new("t");
//! let out = b.param_ptr("out", AddrSpace::Global);
//! let tid = b.special_i32(Special::ThreadId);
//! let x = b.add(tid.into(), Operand::ImmI32(1));
//! let addr = b.index_addr(Operand::Param(out), tid.into(), 4);
//! b.store_global_i32(addr.into(), x.into());
//! b.ret();
//! let w = Toy { kernels: vec![b.finish()] };
//!
//! let ga = GaConfig { population: 16, generations: 6, threads: 1, ..GaConfig::scaled() };
//! let res = run_islands(&w, &IslandConfig::new(ga, 4));
//! assert_eq!(res.islands.len(), 4, "one trajectory per island");
//! assert!(res.speedup >= 1.0);
//! assert!(res.history.records.iter().all(|r| r.island < 4));
//! ```

use crate::edit::Patch;
use crate::fitness::{Evaluator, Workload};
use crate::ga::{GaConfig, GaResult, GenerationRecord, History, Individual};
use crate::mutation::{crossover_one_point, MutationSpace, MutationWeights};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Where each island's emigrants go.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Island `i` sends to island `(i + 1) % n` — the classic ring.
    Ring,
    /// Each migration picks a uniformly random destination island
    /// (never the source), drawn from a dedicated migration RNG so the
    /// islands' own streams stay untouched.
    Random,
}

/// Island-model hyper-parameters on top of a [`GaConfig`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IslandConfig {
    /// The per-run GA knobs. `population` is the **total** number of
    /// individuals across all islands, split as evenly as possible
    /// (see [`IslandConfig::island_populations`]).
    pub ga: GaConfig,
    /// Number of subpopulations (1 = the classic single-population GA).
    pub islands: usize,
    /// Generations between migrations (0 = never migrate).
    pub migration_interval: usize,
    /// Elite individuals each island emits per migration.
    pub emigrants: usize,
    /// Destination pattern for emigrants.
    pub topology: Topology,
}

impl IslandConfig {
    /// An island configuration with the default migration policy:
    /// ring topology, two elite emigrants every five generations.
    #[must_use]
    pub fn new(ga: GaConfig, islands: usize) -> IslandConfig {
        IslandConfig {
            ga,
            islands: islands.max(1),
            migration_interval: 5,
            emigrants: 2,
            topology: Topology::Ring,
        }
    }

    /// The single-population special case ([`crate::run_ga`] uses this).
    #[must_use]
    pub fn single(ga: GaConfig) -> IslandConfig {
        IslandConfig::new(ga, 1)
    }

    /// Same configuration with a different master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> IslandConfig {
        self.ga.seed = seed;
        self
    }

    /// Per-island population sizes: the total [`GaConfig::population`]
    /// budget split as evenly as possible (the first
    /// `population % islands` islands take one extra individual), so
    /// 1-island and N-island runs compare at **exactly** equal budgets.
    /// The island count is clamped to the population so no island
    /// starts empty.
    #[must_use]
    pub fn island_populations(&self) -> Vec<usize> {
        let total = self.ga.population.max(1);
        let n = self.islands.clamp(1, total);
        let base = total / n;
        let extra = total % n;
        (0..n).map(|i| base + usize::from(i < extra)).collect()
    }
}

/// One individual crossing between islands, recorded only when the
/// immigrant was actually delivered into the destination population
/// (for the lineage analyses: a best individual whose edits were first
/// seen on another island arrived through one of these).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationEvent {
    /// Generation after which the migration happened.
    pub gen: usize,
    /// Source island.
    pub from: usize,
    /// Destination island.
    pub to: usize,
    /// The emigrant's fitness at departure.
    pub fitness: f64,
    /// The emigrant's genome.
    pub patch: Patch,
}

/// Everything recorded by an island run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IslandResult {
    /// The best individual across all islands over the whole run.
    pub best: Individual,
    /// Speedup of `best` over the pristine program.
    pub speedup: f64,
    /// The global trajectory: per generation, the best individual across
    /// all islands (with the owning island recorded), plus every
    /// migration event.
    pub history: History,
    /// Per-island trajectories, one per island actually run (the
    /// configured count is clamped to the population — see
    /// [`IslandConfig::island_populations`]). Each island's history
    /// carries its own discovery sequence and the migration events it
    /// took part in.
    pub islands: Vec<History>,
    /// Fitness evaluations actually performed (cache misses).
    pub evals: usize,
    /// Evaluations served from the sharded cache.
    pub cache_hits: usize,
    /// Simulated warp-instructions across the performed evaluations
    /// (interpreter-throughput numerator; see
    /// [`crate::Evaluator::instructions_simulated`]).
    pub instructions: u64,
}

impl IslandResult {
    /// Collapses to the single-population result shape (the global view).
    #[must_use]
    pub fn into_ga_result(self) -> GaResult {
        GaResult {
            best: self.best,
            speedup: self.speedup,
            history: self.history,
            evals: self.evals,
        }
    }
}

/// `SplitMix64` — used to derive independent island seeds from the master
/// seed (island 0 keeps the master seed itself so N=1 reproduces the
/// original single-population stream).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn island_seed(master: u64, island: usize) -> u64 {
    if island == 0 {
        master
    } else {
        splitmix64(master ^ (island as u64).wrapping_mul(0xA076_1D64_78BD_642F))
    }
}

/// One subpopulation plus its private RNG stream and trajectory.
struct Island {
    rng: ChaCha8Rng,
    population: Vec<Individual>,
    /// Valid individuals, best first — refreshed every generation.
    ranked: Vec<usize>,
    history: History,
    best: Individual,
}

impl Island {
    fn new(seed: u64, pop: usize, baseline: f64, space: &MutationSpace) -> Island {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut population: Vec<Individual> = Vec::with_capacity(pop);
        population.push(Individual {
            patch: Patch::empty(),
            fitness: Some(baseline),
        });
        while population.len() < pop {
            let mut p = Patch::empty();
            space.mutate(&mut p, &mut rng);
            population.push(Individual {
                patch: p,
                fitness: None,
            });
        }
        Island {
            rng,
            population,
            ranked: Vec::new(),
            history: History {
                baseline,
                records: Vec::new(),
                first_seen_in_best: HashMap::new(),
                migrations: Vec::new(),
            },
            best: Individual {
                patch: Patch::empty(),
                fitness: Some(baseline),
            },
        }
    }

    /// Re-sorts the valid individuals (lower cycles = better).
    fn rank(&mut self) {
        self.ranked = (0..self.population.len())
            .filter(|&i| self.population[i].fitness.is_some())
            .collect();
        self.ranked.sort_by(|&a, &b| {
            self.population[a]
                .fitness
                .partial_cmp(&self.population[b].fitness)
                .expect("valid fitness is never NaN")
        });
    }

    /// This generation's best individual, if anyone is valid.
    fn gen_best(&self) -> Option<&Individual> {
        self.ranked.first().map(|&i| &self.population[i])
    }

    /// Appends this generation to the island's own trajectory.
    fn record(&mut self, gen: usize, id: usize, baseline: f64) {
        if let Some(gb) = self.gen_best().cloned() {
            let f = gb.fitness.expect("ranked individuals are valid");
            if f < self.best.fitness.expect("island best is always valid") {
                self.best = gb.clone();
            }
            for e in gb.patch.edits() {
                self.history.first_seen_in_best.entry(*e).or_insert(gen);
            }
            self.history.records.push(GenerationRecord {
                gen,
                island: id,
                best_fitness: f,
                best_speedup: baseline / f,
                best_patch: gb.patch,
                valid: self.ranked.len(),
            });
        } else {
            self.history.records.push(GenerationRecord {
                gen,
                island: id,
                best_fitness: baseline,
                best_speedup: 1.0,
                best_patch: Patch::empty(),
                valid: 0,
            });
        }
    }

    /// Elites + offspring, exactly the single-population breeding loop.
    /// `elitism` arrives pre-split across islands: at least one elite
    /// per island when elitism is enabled (so every island's trajectory
    /// stays monotone), exactly zero when the caller disabled elitism.
    fn breed(
        &mut self,
        cfg: &GaConfig,
        pop: usize,
        elitism: usize,
        baseline: f64,
        space: &MutationSpace,
    ) {
        let mut next: Vec<Individual> = self
            .ranked
            .iter()
            .take(elitism)
            .map(|&i| self.population[i].clone())
            .collect();
        if next.is_empty() {
            next.push(Individual {
                patch: Patch::empty(),
                fitness: Some(baseline),
            });
        }
        while next.len() < pop {
            let parent_a = tournament(
                &self.population,
                &self.ranked,
                cfg.tournament,
                &mut self.rng,
            );
            let mut child = if self.rng.gen_bool(cfg.crossover_p) && self.ranked.len() >= 2 {
                let parent_b = tournament(
                    &self.population,
                    &self.ranked,
                    cfg.tournament,
                    &mut self.rng,
                );
                crossover_one_point(&parent_a.patch, &parent_b.patch, &mut self.rng)
            } else {
                parent_a.patch.clone()
            };
            if self.rng.gen_bool(cfg.mutation_p) {
                space.mutate(&mut child, &mut self.rng);
            }
            if child.len() > cfg.max_patch_len {
                let edits = child.edits()[child.len() - cfg.max_patch_len..].to_vec();
                child = Patch::from_edits(edits);
            }
            next.push(Individual {
                patch: child,
                fitness: None,
            });
        }
        self.population = next;
    }

    /// Replaceable slots under a given protection level: everything but
    /// the island's `protect` best-ranked individuals. Callers truncate
    /// an inbound wave to this before delivering (and before logging).
    fn receive_capacity(&self, protect: usize) -> usize {
        self.population.len() - protect.min(self.ranked.len())
    }

    /// Overwrites this island's worst individuals with immigrants.
    /// Invalid individuals go first, then the weakest valid ones; the
    /// island's `protect` best-ranked individuals are never replaced
    /// (migration adds diversity, it must not evict the local champion).
    /// Callers pre-truncate to [`Island::receive_capacity`]. The ranking
    /// is refreshed afterwards so immigrants can be elites.
    fn receive(&mut self, immigrants: Vec<Individual>, protect: usize) {
        if immigrants.is_empty() {
            return;
        }
        let keep = protect.min(self.ranked.len());
        let mut worst_first: Vec<usize> = (0..self.population.len())
            .filter(|i| !self.ranked.contains(i))
            .collect();
        worst_first.extend(self.ranked.iter().skip(keep).rev().copied());
        for (slot, imm) in worst_first.into_iter().zip(immigrants) {
            self.population[slot] = imm;
        }
        self.rank();
    }
}

/// Runs the island-model GA with default mutation weights.
///
/// # Panics
/// Panics if the pristine program fails its own test set (workload bug).
#[must_use]
pub fn run_islands(workload: &dyn Workload, cfg: &IslandConfig) -> IslandResult {
    run_islands_with_weights(workload, cfg, MutationWeights::default())
}

/// [`run_islands`] with explicit mutation-operator weights.
///
/// # Panics
/// Panics if the pristine program fails its own test set (workload bug).
#[must_use]
pub fn run_islands_with_weights(
    workload: &dyn Workload,
    cfg: &IslandConfig,
    weights: MutationWeights,
) -> IslandResult {
    let evaluator = Evaluator::new(workload);
    let baseline = evaluator.baseline();
    let space = MutationSpace::new(workload.kernels(), weights);
    let ga = &cfg.ga;
    // Budget semantics: population and elitism are totals. The
    // population splits exactly (equal-budget comparisons stay equal);
    // elitism splits with a floor of one elite per island — otherwise an
    // island could lose its best between generations — except when the
    // caller disabled elitism outright, which is honored everywhere.
    let pops = cfg.island_populations();
    let n = pops.len();
    let elitism = if n == 1 || ga.elitism == 0 {
        ga.elitism
    } else {
        (ga.elitism / n).max(1)
    };

    let mut islands: Vec<Island> = pops
        .iter()
        .enumerate()
        .map(|(i, &pop)| Island::new(island_seed(ga.seed, i), pop, baseline, &space))
        .collect();
    // Random-topology draws come from a dedicated stream so migration
    // policy never perturbs the islands' evolutionary randomness.
    let mut mig_rng = ChaCha8Rng::seed_from_u64(splitmix64(ga.seed ^ 0x4D69_6772_6174_6521));

    let mut history = History {
        baseline,
        records: Vec::with_capacity(ga.generations),
        first_seen_in_best: HashMap::new(),
        migrations: Vec::new(),
    };
    let mut best_overall = Individual {
        patch: Patch::empty(),
        fitness: Some(baseline),
    };

    for gen in 0..ga.generations {
        // Evaluate every island's population through one shared batch so
        // the worker pool (and the sharded cache) sees all of it at once.
        let patches: Vec<Patch> = islands
            .iter()
            .flat_map(|isl| isl.population.iter().map(|ind| ind.patch.clone()))
            .collect();
        let outcomes = evaluator.evaluate_batch(&patches, ga.threads);
        let mut cursor = 0;
        for isl in &mut islands {
            for ind in &mut isl.population {
                ind.fitness = outcomes[cursor].fitness;
                cursor += 1;
            }
            isl.rank();
        }
        for (id, isl) in islands.iter_mut().enumerate() {
            isl.record(gen, id, baseline);
        }

        // Global record: the best island this generation.
        let winner = islands
            .iter()
            .enumerate()
            .filter_map(|(id, isl)| isl.gen_best().map(|gb| (id, gb)))
            .min_by(|(_, a), (_, b)| {
                a.fitness
                    .partial_cmp(&b.fitness)
                    .expect("valid fitness is never NaN")
            });
        let valid_total: usize = islands.iter().map(|isl| isl.ranked.len()).sum();
        if let Some((id, gb)) = winner {
            let gb = gb.clone();
            let f = gb.fitness.expect("winner is valid");
            if f < best_overall.fitness.expect("baseline valid") {
                best_overall = gb.clone();
            }
            for e in gb.patch.edits() {
                history.first_seen_in_best.entry(*e).or_insert(gen);
            }
            history.records.push(GenerationRecord {
                gen,
                island: id,
                best_fitness: f,
                best_speedup: baseline / f,
                best_patch: gb.patch,
                valid: valid_total,
            });
        } else {
            history.records.push(GenerationRecord {
                gen,
                island: 0,
                best_fitness: baseline,
                best_speedup: 1.0,
                best_patch: Patch::empty(),
                valid: 0,
            });
        }

        if gen + 1 == ga.generations {
            break;
        }

        // Migration: collect everything against the pre-migration
        // populations first, then deliver, so a fast individual cannot
        // hop two islands in one wave.
        if n > 1 && cfg.migration_interval > 0 && (gen + 1) % cfg.migration_interval == 0 {
            let mut inboxes: Vec<Vec<(MigrationEvent, Individual)>> = vec![Vec::new(); n];
            for (src, isl) in islands.iter().enumerate() {
                let dst = match cfg.topology {
                    Topology::Ring => (src + 1) % n,
                    Topology::Random => {
                        let pick = mig_rng.gen_range(0..n - 1);
                        if pick >= src {
                            pick + 1
                        } else {
                            pick
                        }
                    }
                };
                for &i in isl.ranked.iter().take(cfg.emigrants) {
                    let emigrant = isl.population[i].clone();
                    let event = MigrationEvent {
                        gen,
                        from: src,
                        to: dst,
                        fitness: emigrant.fitness.expect("ranked emigrant is valid"),
                        patch: emigrant.patch.clone(),
                    };
                    inboxes[dst].push((event, emigrant));
                }
            }
            // Even with elitism disabled, an island's current champion
            // survives the wave — migration fills weak slots only, and
            // the log records only the crossings actually delivered.
            let protect = elitism.max(1);
            for (isl, inbox) in islands.iter_mut().zip(inboxes) {
                let capacity = isl.receive_capacity(protect);
                let mut delivered = Vec::with_capacity(inbox.len().min(capacity));
                for (event, imm) in inbox.into_iter().take(capacity) {
                    history.migrations.push(event);
                    delivered.push(imm);
                }
                isl.receive(delivered, protect);
            }
        }

        for (isl, &pop) in islands.iter_mut().zip(&pops) {
            isl.breed(ga, pop, elitism, baseline, &space);
        }
    }

    // Fan the migration log out to the islands that took part.
    for (id, isl) in islands.iter_mut().enumerate() {
        isl.history.migrations = history
            .migrations
            .iter()
            .filter(|m| m.from == id || m.to == id)
            .cloned()
            .collect();
    }

    let speedup = baseline
        / best_overall
            .fitness
            .expect("best individual is always valid");
    IslandResult {
        best: best_overall,
        speedup,
        history,
        islands: islands.into_iter().map(|isl| isl.history).collect(),
        evals: evaluator.evals_performed(),
        cache_hits: evaluator.cache_hits(),
        instructions: evaluator.instructions_simulated(),
    }
}

/// Tournament selection over the valid individuals; falls back to a
/// random (possibly invalid) individual when nothing is valid yet.
fn tournament<'p, R: Rng>(
    population: &'p [Individual],
    ranked: &[usize],
    k: usize,
    rng: &mut R,
) -> &'p Individual {
    if ranked.is_empty() {
        return population.choose(rng).expect("population non-empty");
    }
    let mut best: Option<usize> = None;
    for _ in 0..k.max(1) {
        let cand = *ranked.choose(rng).expect("ranked non-empty");
        best = Some(match best {
            None => cand,
            Some(cur) => {
                if population[cand].fitness < population[cur].fitness {
                    cand
                } else {
                    cur
                }
            }
        });
    }
    &population[best.expect("at least one round ran")]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::EvalOutcome;
    use crate::ga::run_ga;
    use gevo_gpu::LaunchStats;
    use gevo_ir::{AddrSpace, Kernel, KernelBuilder, Operand, Special};

    /// Toy workload with a known optimum: fitness = 100 + 10 per
    /// remaining deletable instruction; the store must survive.
    struct Toy {
        kernels: Vec<Kernel>,
        store_id: gevo_ir::InstId,
    }

    impl Toy {
        fn new() -> Toy {
            let mut b = KernelBuilder::new("toy");
            let out = b.param_ptr("out", AddrSpace::Global);
            let tid = b.special_i32(Special::ThreadId);
            let mut acc = b.mov(Operand::ImmI32(0));
            for _ in 0..6 {
                acc = b.add(acc.into(), Operand::ImmI32(1));
            }
            let _ = acc;
            let addr = b.index_addr(Operand::Param(out), tid.into(), 4);
            let store_probe = b.peek_next_id();
            b.store_global_i32(addr.into(), tid.into());
            b.ret();
            Toy {
                kernels: vec![b.finish()],
                store_id: store_probe,
            }
        }
    }

    impl Workload for Toy {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn kernels(&self) -> &[Kernel] {
            &self.kernels
        }
        fn evaluate(&self, kernels: &[Kernel], _seed: u64) -> EvalOutcome {
            let k = &kernels[0];
            if k.locate(self.store_id).is_none() {
                return EvalOutcome::fail("store deleted");
            }
            if gevo_ir::verify::verify(k).is_err() {
                return EvalOutcome::fail("verification");
            }
            #[allow(clippy::cast_precision_loss)]
            let f = 100.0 + 10.0 * k.inst_count() as f64;
            EvalOutcome::pass(f, LaunchStats::default())
        }
    }

    fn quick_ga(seed: u64) -> GaConfig {
        GaConfig {
            population: 32,
            elitism: 2,
            crossover_p: 0.8,
            mutation_p: 0.9,
            generations: 20,
            tournament: 3,
            seed,
            threads: 1,
            max_patch_len: 64,
        }
    }

    #[test]
    fn single_island_matches_run_ga_exactly() {
        let toy = Toy::new();
        let cfg = quick_ga(7);
        let ga = run_ga(&toy, &cfg);
        let isl = run_islands(&toy, &IslandConfig::single(cfg));
        assert_eq!(ga.best.patch, isl.best.patch);
        assert_eq!(ga.speedup, isl.speedup);
        assert_eq!(ga.history, isl.history);
        assert_eq!(ga.evals, isl.evals);
        assert_eq!(isl.islands.len(), 1);
        assert!(
            isl.history.migrations.is_empty(),
            "one island never migrates"
        );
    }

    #[test]
    fn islands_are_deterministic_per_seed() {
        let toy = Toy::new();
        let cfg = IslandConfig::new(quick_ga(11), 4);
        let a = run_islands(&toy, &cfg);
        let b = run_islands(&toy, &cfg);
        assert_eq!(a.best.patch, b.best.patch);
        assert_eq!(a.history, b.history);
        assert_eq!(a.islands, b.islands);
        assert_eq!(a.evals, b.evals);
    }

    #[test]
    fn migration_follows_the_ring() {
        let toy = Toy::new();
        let mut cfg = IslandConfig::new(quick_ga(3), 3);
        cfg.migration_interval = 2;
        cfg.emigrants = 1;
        let res = run_islands(&toy, &cfg);
        assert!(!res.history.migrations.is_empty(), "migrations happened");
        for m in &res.history.migrations {
            assert_eq!(m.to, (m.from + 1) % 3, "ring destination");
            assert_eq!((m.gen + 1) % 2, 0, "only at the interval");
            assert!(m.fitness <= res.history.baseline);
        }
        // Each island's log holds exactly the events it took part in.
        for (id, h) in res.islands.iter().enumerate() {
            assert!(h.migrations.iter().all(|m| m.from == id || m.to == id));
        }
    }

    #[test]
    fn random_topology_stays_deterministic_and_never_self_migrates() {
        let toy = Toy::new();
        let mut cfg = IslandConfig::new(quick_ga(13), 4);
        cfg.topology = Topology::Random;
        cfg.migration_interval = 3;
        let a = run_islands(&toy, &cfg);
        let b = run_islands(&toy, &cfg);
        assert_eq!(a.history.migrations, b.history.migrations);
        assert!(!a.history.migrations.is_empty());
        for m in &a.history.migrations {
            assert_ne!(m.from, m.to, "an island never migrates to itself");
            assert!(m.to < 4);
        }
    }

    #[test]
    fn global_best_is_monotone_across_islands() {
        let toy = Toy::new();
        let res = run_islands(&toy, &IslandConfig::new(quick_ga(5), 4));
        let mut last = f64::INFINITY;
        for r in &res.history.records {
            assert!(
                r.best_fitness <= last + 1e-9,
                "per-island elitism keeps the global best: gen {}",
                r.gen
            );
            last = r.best_fitness;
        }
        // The reported best matches the trajectory's floor.
        assert_eq!(
            res.best.fitness.unwrap(),
            res.history
                .records
                .iter()
                .map(|r| r.best_fitness)
                .fold(f64::INFINITY, f64::min)
        );
    }

    #[test]
    fn per_island_histories_cover_every_generation() {
        let toy = Toy::new();
        let cfg = IslandConfig::new(quick_ga(9), 3);
        let res = run_islands(&toy, &cfg);
        assert_eq!(res.islands.len(), 3);
        for (id, h) in res.islands.iter().enumerate() {
            assert_eq!(h.records.len(), cfg.ga.generations);
            assert!(h.records.iter().all(|r| r.island == id));
        }
        // The global record per generation is the min over island records.
        for (g, rec) in res.history.records.iter().enumerate() {
            let island_min = res
                .islands
                .iter()
                .map(|h| h.records[g].best_fitness)
                .fold(f64::INFINITY, f64::min);
            assert_eq!(rec.best_fitness, island_min, "gen {g}");
        }
    }

    #[test]
    fn equal_budget_islands_find_the_optimum_too() {
        // Same total budget, split four ways: still reaches the toy's
        // optimum (all six dead adds deleted).
        let toy = Toy::new();
        let single = run_islands(&toy, &IslandConfig::single(quick_ga(1)));
        let multi = run_islands(&toy, &IslandConfig::new(quick_ga(1), 4));
        assert!(
            multi.best.fitness.unwrap() <= single.best.fitness.unwrap() + 1e-9,
            "islands match the single population on the toy: {} vs {}",
            multi.best.fitness.unwrap(),
            single.best.fitness.unwrap()
        );
    }

    #[test]
    fn island_budget_splits_exactly() {
        let uneven = IslandConfig::new(
            GaConfig {
                population: 30,
                ..quick_ga(0)
            },
            4,
        );
        assert_eq!(uneven.island_populations(), vec![8, 8, 7, 7]);
        // More islands than individuals: clamp, never inflate the budget.
        let clamped = IslandConfig::new(
            GaConfig {
                population: 3,
                ..quick_ga(0)
            },
            8,
        );
        assert_eq!(clamped.island_populations(), vec![1, 1, 1]);
    }

    #[test]
    fn migration_never_evicts_an_island_champion() {
        // Two individuals per island and an inbox as large as the whole
        // island: the wave may replace everything except the champion,
        // so the global best stays monotone even here.
        let toy = Toy::new();
        let mut ga = quick_ga(6);
        ga.population = 8;
        let mut cfg = IslandConfig::new(ga, 4);
        cfg.migration_interval = 1;
        cfg.emigrants = 2;
        let res = run_islands(&toy, &cfg);
        let mut last = f64::INFINITY;
        for r in &res.history.records {
            assert!(
                r.best_fitness <= last + 1e-9,
                "gen {}: champion was evicted by migration",
                r.gen
            );
            last = r.best_fitness;
        }
        // The log records deliveries only: with a single replaceable
        // slot per island, no (gen, destination) pair can log more
        // than one crossing even though two emigrants were selected.
        let mut delivered: HashMap<(usize, usize), usize> = HashMap::new();
        for m in &res.history.migrations {
            *delivered.entry((m.gen, m.to)).or_insert(0) += 1;
        }
        assert!(!delivered.is_empty(), "migrations still happen");
        assert!(
            delivered.values().all(|&c| c <= 1),
            "an overflowing wave was logged as delivered"
        );
    }

    #[test]
    fn zero_elitism_is_honored_on_every_island() {
        let toy = Toy::new();
        let mut ga = quick_ga(4);
        ga.elitism = 0;
        ga.generations = 6;
        let res = run_islands(&toy, &IslandConfig::new(ga, 3));
        // With no elites anywhere the global best can regress between
        // generations; the run must still complete and report a valid
        // best (the baseline individual is always re-seeded on demand).
        assert_eq!(res.history.records.len(), 6);
        assert!(res.best.fitness.is_some());
        assert!(res.speedup >= 1.0);
    }
}
