//! Multi-objective (NSGA-II) search harness: evolve a Table-1 workload
//! against two objectives and report the Pareto front.
//!
//! GEVO (Liou et al., TACO 2020) does not rank variants by a single
//! scalar — it runs NSGA-II over runtime *and* error. This harness
//! reproduces that recipe on the reproduction's workloads:
//!
//! * `SIMCoV` against (cycles, error) — the fuzzy per-value validation
//!   gives a real accuracy budget to trade against speed;
//! * ADEPT-V0 against (cycles, `mem_traffic`) — exact-output workload,
//!   so the second axis is the DRAM-traffic proxy instead.
//!
//! Budget via `GEVO_POP` / `GEVO_GENS` / `GEVO_SEED`; island count via
//! `--islands N` / `GEVO_ISLANDS`; objective pair via `GEVO_OBJECTIVES`
//! (defaults per workload as above).
//!
//! `--json` switches to one JSON object per front point (markdown
//! suppressed), mirroring the `islands --json` trajectory capture:
//!
//! ```text
//! {"workload":"SIMCoV / P100","objectives":["cycles","error"],
//!  "front_size":3,"point":0,"cycles":...,"scores":[...,...],
//!  "speedup":...,"edits":...}
//! ```

use gevo_bench::{adept_on, budget_banner, harness_spec, row, run_search};
use gevo_bench::{scaled_table1_specs, simcov_on};
use gevo_engine::{Objective, Workload};
use gevo_workloads::adept::Version;

fn report(name: &str, w: &dyn Workload, objectives: &[Objective], json: bool) {
    // harness_spec already honors GEVO_POP/GEVO_GENS; these are the
    // fallback defaults.
    let mut spec = harness_spec(24, 12);
    // GEVO_OBJECTIVES wins when set; otherwise the per-workload default.
    if std::env::var("GEVO_OBJECTIVES").is_err() {
        spec.objectives = objectives.to_vec();
        spec.selection = gevo_engine::Selection::Nsga2;
    }
    let names: Vec<&str> = spec.objectives.iter().map(|o| o.name()).collect();
    if !json {
        println!("## {name} — NSGA-II ({})", budget_banner(&spec));
        let mut hdr: Vec<String> = vec!["point".into()];
        hdr.extend(names.iter().map(|n| (*n).to_string()));
        hdr.push("speedup".into());
        hdr.push("edits".into());
        row(&hdr);
        row(&vec!["---".into(); hdr.len()]);
    }
    let res = run_search(w, &spec);
    let mut front = res.pareto.clone();
    // Present the front fastest-first (archive order is discovery order).
    front.sort_by(|a, b| a.fitness.total_cmp(&b.fitness));
    for (i, p) in front.iter().enumerate() {
        let speedup = res.history.baseline / p.fitness;
        if json {
            let scores: Vec<String> = p.scores.iter().map(|s| format!("{s:.6}")).collect();
            let quoted: Vec<String> = names.iter().map(|n| format!("\"{n}\"")).collect();
            println!(
                "{{\"workload\":\"{name}\",\"objectives\":[{}],\"front_size\":{},\
                 \"point\":{i},\"cycles\":{:.1},\"scores\":[{}],\"speedup\":{speedup:.6},\
                 \"edits\":{}}}",
                quoted.join(","),
                front.len(),
                p.fitness,
                scores.join(","),
                p.patch.len(),
            );
        } else {
            let mut cells: Vec<String> = vec![i.to_string()];
            cells.extend(p.scores.iter().map(|s| format!("{s:.4}")));
            cells.push(format!("{speedup:.2}x"));
            cells.push(p.patch.len().to_string());
            row(&cells);
        }
    }
    if !json {
        println!(
            "front: {} non-dominated points (best scalar speedup {:.2}x)",
            front.len(),
            res.speedup
        );
        println!();
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    if !json {
        println!("Pareto fronts: NSGA-II over two objectives (GEVO's selection scheme)");
        println!();
    }
    let p100 = &scaled_table1_specs()[0];

    let simcov = simcov_on(p100);
    report(
        "SIMCoV / P100",
        &simcov,
        &[Objective::Cycles, Objective::Error],
        json,
    );

    let adept = adept_on(Version::V0, p100);
    report(
        "ADEPT-V0 / P100",
        &adept,
        &[Objective::Cycles, Objective::MemoryTraffic],
        json,
    );

    if !json {
        println!("Shape to check: SIMCoV's front trades accuracy (error budget");
        println!("consumed) for cycles; exact-output ADEPT collapses error to 0, so");
        println!("its second axis is memory traffic. A front with one point means");
        println!("one variant dominated everything — raise GEVO_GENS/GEVO_POP.");
    }
}
