//! Counter-based pseudo-random mixing shared between device kernels and
//! CPU reference models.
//!
//! `SIMCoV`'s fitness validation (paper §II-C2, §III-C) requires the GPU
//! simulation and its ground-truth oracle to draw *identical* random
//! streams when the seed is fixed. Both sides therefore call this one
//! function: kernels via the [`crate::Op::RngNext`] instruction (executed
//! by the simulator), oracles directly.
//!
//! The mixer is a strengthened `SplitMix64` finalizer over the pair
//! `(seed, counter)` — statistically solid for simulation purposes and,
//! critically, stateless: a thread's draw depends only on its logical
//! coordinates, never on scheduling order.
//!
//! The engine's *stateful* streams (per-island breeding RNGs, the
//! migration RNG) are `ChaCha8Rng` instances; [`StreamState`] captures
//! one as its `(seed, word position)` pair so a checkpoint can restore
//! the stream mid-flight and continue bit-identically.

use rand_chacha::ChaCha8Rng;

/// A serializable snapshot of a [`ChaCha8Rng`] stream: the 256-bit seed
/// plus the number of 32-bit words already consumed.
///
/// `ChaCha` output is counter-addressed, so this pair pinpoints the
/// stream exactly and [`restore`](Self::restore) is O(1) — no
/// fast-forwarding through discarded output. The invariant checkpoints
/// rely on: `StreamState::capture(&rng).restore()` yields a generator
/// whose future output is bit-identical to `rng`'s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamState {
    /// The seed the generator was constructed from.
    pub seed: [u8; 32],
    /// 32-bit words consumed since construction.
    pub word_pos: u64,
}

impl StreamState {
    /// Captures the current position of `rng` without perturbing it.
    ///
    /// # Panics
    /// Panics if the stream has consumed more than `u64::MAX` words
    /// (unreachable in practice: that is 2^70 bytes of output).
    #[must_use]
    pub fn capture(rng: &ChaCha8Rng) -> Self {
        StreamState {
            seed: rng.get_seed(),
            word_pos: u64::try_from(rng.get_word_pos()).expect("word position fits in u64"),
        }
    }

    /// Reconstructs the generator at the captured position.
    #[must_use]
    pub fn restore(&self) -> ChaCha8Rng {
        let mut rng = <ChaCha8Rng as rand::SeedableRng>::from_seed(self.seed);
        rng.set_word_pos(u128::from(self.word_pos));
        rng
    }

    /// Serializes to a JSON object `{"seed": "<64 hex chars>",
    /// "word_pos": <u64>}`.
    #[must_use]
    pub fn to_json(&self) -> serde_json::Value {
        let mut hex = String::with_capacity(64);
        for b in self.seed {
            use std::fmt::Write as _;
            write!(hex, "{b:02x}").expect("writing to String cannot fail");
        }
        let mut obj = serde_json::Map::new();
        obj.insert("seed", hex);
        obj.insert("word_pos", self.word_pos);
        serde_json::Value::Object(obj)
    }

    /// Deserializes the [`to_json`](Self::to_json) representation.
    ///
    /// # Errors
    /// Returns a message naming the malformed field.
    pub fn from_json(v: &serde_json::Value) -> Result<Self, String> {
        let hex = v
            .get("seed")
            .and_then(serde_json::Value::as_str)
            .ok_or("StreamState: missing seed")?;
        if hex.len() != 64 || !hex.is_ascii() {
            return Err(format!(
                "StreamState: seed must be 64 hex chars, got {hex:?}"
            ));
        }
        let mut seed = [0u8; 32];
        for (i, b) in seed.iter_mut().enumerate() {
            *b = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16)
                .map_err(|e| format!("StreamState: bad seed hex: {e}"))?;
        }
        let word_pos = v
            .get("word_pos")
            .and_then(serde_json::Value::as_u64)
            .ok_or("StreamState: missing word_pos")?;
        Ok(StreamState { seed, word_pos })
    }
}

/// Mixes two 64-bit values into 64 well-scrambled bits.
#[must_use]
pub fn mix64(seed: u64, counter: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(counter)
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes to a non-negative `i32` (31 uniform bits) — the value produced by
/// the `rng.next` instruction.
#[must_use]
pub fn mix_to_u31(seed: i64, counter: i64) -> i32 {
    // Cast-preserving: the device op operates on i64 operands.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let bits = (mix64(seed as u64, counter as u64) >> 33) as u32;
    #[allow(clippy::cast_possible_wrap)]
    {
        (bits & 0x7FFF_FFFF) as i32
    }
}

/// A draw in `[0, 1)` derived from the same stream, used by CPU oracles
/// for probability thresholds.
#[must_use]
pub fn mix_to_unit_f64(seed: i64, counter: i64) -> f64 {
    f64::from(mix_to_u31(seed, counter)) / (f64::from(0x4000_0000i32) * 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn stream_state_restores_midflight() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xBEEF);
        for _ in 0..23 {
            rng.next_u32();
        }
        let snap = StreamState::capture(&rng);
        let mut restored = snap.restore();
        for i in 0..100 {
            assert_eq!(restored.next_u64(), rng.next_u64(), "diverged at draw {i}");
        }
    }

    #[test]
    fn stream_state_json_round_trips() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        rng.next_u64();
        let snap = StreamState::capture(&rng);
        let json = snap.to_json();
        let reparsed = serde_json::from_str(&json.to_string()).unwrap();
        assert_eq!(StreamState::from_json(&reparsed).unwrap(), snap);
    }

    #[test]
    fn stream_state_rejects_malformed_json() {
        for bad in [
            "{}",
            r#"{"seed":"zz","word_pos":0}"#,
            r#"{"seed":"00","word_pos":0}"#,
            r#"{"seed":"0000000000000000000000000000000000000000000000000000000000000000"}"#,
        ] {
            let v = serde_json::from_str(bad).unwrap();
            assert!(StreamState::from_json(&v).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(mix64(42, 7), mix64(42, 7));
        assert_eq!(mix_to_u31(42, 7), mix_to_u31(42, 7));
    }

    #[test]
    fn nonnegative() {
        for c in 0..1000 {
            assert!(mix_to_u31(12345, c) >= 0);
        }
    }

    #[test]
    fn counter_sensitivity() {
        // Adjacent counters should produce different values almost surely.
        let distinct = (0..100)
            .map(|c| mix_to_u31(1, c))
            .collect::<std::collections::HashSet<_>>();
        assert!(
            distinct.len() > 95,
            "only {} distinct draws",
            distinct.len()
        );
    }

    #[test]
    fn seed_sensitivity() {
        assert_ne!(mix_to_u31(1, 0), mix_to_u31(2, 0));
    }

    #[test]
    fn unit_interval() {
        for c in 0..1000 {
            let v = mix_to_unit_f64(9, c);
            assert!((0.0..1.0).contains(&v), "out of range: {v}");
        }
    }

    #[test]
    fn roughly_uniform() {
        // Crude uniformity check: bucket 10k draws into deciles.
        let mut buckets = [0usize; 10];
        for c in 0..10_000 {
            let v = mix_to_unit_f64(777, c);
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let b = (v * 10.0) as usize;
            buckets[b.min(9)] += 1;
        }
        for (i, &count) in buckets.iter().enumerate() {
            assert!((800..1200).contains(&count), "decile {i} has {count} draws");
        }
    }
}
