//! CPU reference implementation of `SIMCoV` — the ground-truth oracle
//! (paper §III-C: "We use the simulation output generated from the
//! unmodified `SIMCoV` as ground truth").
//!
//! Every update rule, constant, floating-point operation *and operation
//! order* matches the GPU kernels bit-for-bit, including the shared
//! counter-based RNG ([`gevo_ir::rng`]). The one deliberate difference is
//! T-cell movement-claim resolution order: the CPU resolves claims in
//! row-major cell order, the GPU in warp-scheduler order — precisely the
//! §II-C2 race the paper's per-value mean/variance validation tolerates.

use super::kernels::NEIGHBORS;
use super::SimcovParams;
use gevo_ir::rng::mix_to_u31;

/// Full simulation state for a `g × g` grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SimcovState {
    /// Grid side.
    pub g: i32,
    /// Epithelial state per cell (0 healthy, 1 infected, 2 expressing,
    /// 3 apoptotic, 4 dead).
    pub epi: Vec<i32>,
    /// State-machine countdown per cell.
    pub timer: Vec<i32>,
    /// Virion concentration per cell.
    pub vir: Vec<f32>,
    /// Inflammatory-signal concentration per cell.
    pub chem: Vec<f32>,
    /// T-cell presence per cell (0/1).
    pub tcell: Vec<i32>,
    /// T-cell remaining lifetime per cell.
    pub tlife: Vec<i32>,
}

impl SimcovState {
    /// Fresh healthy tissue with `infections` initial infection sites
    /// placed by the shared RNG (paper §II-C: "a set of infection sites").
    #[must_use]
    pub fn new(g: i32, p: &SimcovParams) -> SimcovState {
        #[allow(clippy::cast_sign_loss)]
        let cells = (g * g) as usize;
        let mut s = SimcovState {
            g,
            epi: vec![0; cells],
            timer: vec![0; cells],
            vir: vec![0.0; cells],
            chem: vec![0.0; cells],
            tcell: vec![0; cells],
            tlife: vec![0; cells],
        };
        // Infection sites land in the central third of the tissue — the
        // physical scenario the paper simulates (infection far from the
        // tissue boundary), and the reason §VI-D's boundary-check removal
        // survives the small-grid fitness tests: the fields stay quiet at
        // the edges.
        let third = (g / 3).max(1);
        for k in 0..p.initial_infections {
            let r = g / 2 - third / 2 + mix_to_u31(p.seed, -(i64::from(k)) - 1) % third;
            let col = g / 2 - third / 2 + mix_to_u31(p.seed, -(i64::from(k)) - 101) % third;
            #[allow(clippy::cast_sign_loss)]
            {
                s.vir[(r * g + col) as usize] = p.initial_virions;
            }
        }
        s
    }

    /// Cells in the grid.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.epi.len()
    }

    /// Advances one step, mirroring the GPU kernel sequence 1–7 (the
    /// stats kernel has no state effect).
    #[allow(clippy::too_many_lines, clippy::cast_sign_loss)]
    pub fn step(&mut self, p: &SimcovParams, step: i32) {
        let g = self.g;
        let cells = self.cells();
        let cells_i64 = i64::from(g) * i64::from(g);
        let ctr = |k: i64, c: usize| (i64::from(step) * 2 * cells_i64) + k * cells_i64 + c as i64;

        // 1. extravasate
        for c in 0..cells {
            if self.tcell[c] == 0 && self.chem[c] > p.chem_threshold {
                let r = mix_to_u31(p.seed, ctr(0, c));
                if r < p.p_extravasate_q31 {
                    self.tcell[c] = 1;
                    self.tlife[c] = p.tcell_life;
                }
            }
        }

        // 2. move: claims into tnext (1-based source index).
        let mut tnext = vec![0i32; cells];
        for c in 0..cells {
            if self.tcell[c] != 1 {
                continue;
            }
            let r = mix_to_u31(p.seed, ctr(1, c));
            let d = r % 5;
            let (dx, dy) = match d {
                1 => (0, -1),
                2 => (0, 1),
                3 => (-1, 0),
                4 => (1, 0),
                _ => (0, 0),
            };
            let (row, col) = ((c as i32) / g, (c as i32) % g);
            let (nr, nc) = (row + dy, col + dx);
            let ok = nr >= 0 && nr < g && nc >= 0 && nc < g;
            let dest = if ok { (nr * g + nc) as usize } else { c };
            #[allow(clippy::cast_possible_wrap)]
            let claim = c as i32 + 1;
            if tnext[dest] == 0 {
                tnext[dest] = claim;
            } else if dest != c && tnext[c] == 0 {
                tnext[c] = claim;
            }
        }

        // 3. commit
        let mut tnew = vec![0i32; cells];
        let mut lnew = vec![0i32; cells];
        for c in 0..cells {
            let claim = tnext[c];
            if claim > 0 {
                let src = (claim - 1) as usize;
                let l = self.tlife[src] - 1;
                if l > 0 {
                    tnew[c] = 1;
                    lnew[c] = l;
                }
            }
        }

        // 4. epithelial update (reads post-move T-cell positions).
        for c in 0..cells {
            let e = self.epi[c];
            let tm = self.timer[c];
            let infect = e == 0 && self.vir[c] > p.infect_threshold;
            let live_inf = e == 1 || e == 2;
            let apopt = live_inf && tnew[c] == 1;
            let timed = live_inf || e == 3;
            let tm_dec = tm - 1;
            let expired = tm_dec <= 0;
            let mut e_out = e;
            let mut t_out = tm;
            if timed {
                t_out = tm_dec;
            }
            if e == 3 && expired {
                e_out = 4;
            }
            if e == 2 && expired {
                e_out = 4;
            }
            if e == 1 && expired {
                e_out = 2;
                t_out = p.express_time;
            }
            if apopt {
                e_out = 3;
                t_out = p.apoptosis_time;
            }
            if infect {
                e_out = 1;
                t_out = p.incubation_time;
            }
            self.epi[c] = e_out;
            self.timer[c] = t_out;
        }

        // 5 & 6. diffusion into double buffers, on the finer field
        // timescale (diffusion_substeps per agent step).
        for _sub in 0..p.diffusion_substeps {
            let mut next_vir = vec![0.0f32; cells];
            let mut next_chem = vec![0.0f32; cells];
            for c in 0..cells {
                let (row, col) = ((c as i32) / g, (c as i32) % g);
                let gather = |field: &[f32]| {
                    let mut acc = 0.0f32;
                    for (dx, dy) in NEIGHBORS {
                        let (nr, nc) = (row + dy, col + dx);
                        if nr >= 0 && nr < g && nc >= 0 && nc < g {
                            acc += field[(nr * g + nc) as usize];
                        }
                    }
                    acc
                };
                // Virions: spread, production, decay, clearance, clamp —
                // the exact f32 operation order of the GPU kernel.
                let v = self.vir[c];
                let avg = gather(&self.vir) / 8.0;
                let v1 = v + (avg - v) * p.diffuse_v;
                let prod = if self.epi[c] == 2 {
                    p.vir_production
                } else {
                    0.0
                };
                let v2 = v1 + prod;
                let v3 = v2 * (1.0 - p.decay_v);
                let v4 = if tnew[c] == 1 { v3 * p.tcell_clear } else { v3 };
                next_vir[c] = v4.max(0.0);

                let ch = self.chem[c];
                let avg_c = gather(&self.chem) / 8.0;
                let c1 = ch + (avg_c - ch) * p.diffuse_c;
                let src = if self.epi[c] >= 1 && self.epi[c] <= 3 {
                    p.chem_production
                } else {
                    0.0
                };
                let c2 = c1 + src;
                let c3 = c2 * (1.0 - p.decay_c);
                next_chem[c] = c3.max(0.0);
            }

            // 7. commit/swap (the T-cell copies are idempotent across
            // substeps, exactly as on the device).
            self.vir = next_vir;
            self.chem = next_chem;
        }
        self.tcell = tnew;
        self.tlife = lnew;
    }

    /// Runs `steps` steps.
    pub fn run(&mut self, p: &SimcovParams, steps: i32) {
        for s in 0..steps {
            self.step(p, s);
        }
    }

    /// The stats the reduce kernel computes:
    /// `[virion_q8 (sum of (v*256) as i32), infected, dead, tcells]`.
    #[must_use]
    pub fn stats(&self) -> [i64; 4] {
        let mut out = [0i64; 4];
        for c in 0..self.cells() {
            #[allow(clippy::cast_possible_truncation)]
            let vq = (self.vir[c] * 256.0) as i32;
            out[0] += i64::from(vq);
            if self.epi[c] == 1 || self.epi[c] == 2 {
                out[1] += 1;
            }
            if self.epi[c] == 4 {
                out[2] += 1;
            }
            out[3] += i64::from(self.tcell[c]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SimcovParams {
        SimcovParams::default()
    }

    #[test]
    fn infection_spreads_and_kills() {
        let p = params();
        let mut s = SimcovState::new(24, &p);
        assert!(s.vir.iter().any(|&v| v > 0.0), "initial infection seeded");
        s.run(&p, 40);
        let st = s.stats();
        assert!(
            st[2] > 3,
            "infection spread beyond the initial sites and killed cells: {st:?}"
        );
    }

    #[test]
    fn tcells_eventually_arrive() {
        // T cells surge during the infection and retreat once it clears;
        // check the peak rather than the final count.
        let p = params();
        let mut s = SimcovState::new(24, &p);
        let mut peak = 0;
        for step in 0..40 {
            s.step(&p, step);
            peak = peak.max(s.stats()[3]);
        }
        assert!(
            peak > 5,
            "inflammatory signal recruits T cells: peak {peak}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let p = params();
        let mut a = SimcovState::new(16, &p);
        let mut b = SimcovState::new(16, &p);
        a.run(&p, 12);
        b.run(&p, 12);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_differs() {
        let p = params();
        let mut a = SimcovState::new(16, &p);
        let mut p2 = params();
        p2.seed = p.seed + 1;
        let mut b = SimcovState::new(16, &p2);
        a.run(&p, 12);
        b.run(&p2, 12);
        assert_ne!(a.vir, b.vir);
    }

    #[test]
    fn virions_and_chem_stay_nonnegative_and_finite() {
        let p = params();
        let mut s = SimcovState::new(16, &p);
        s.run(&p, 60);
        for c in 0..s.cells() {
            assert!(s.vir[c] >= 0.0 && s.vir[c].is_finite());
            assert!(s.chem[c] >= 0.0 && s.chem[c].is_finite());
        }
    }

    #[test]
    fn tcell_count_conserved_by_moves() {
        // Between extravasation (adds) and expiry (removes), moves alone
        // never duplicate a T cell: occupancy stays 0/1.
        let p = params();
        let mut s = SimcovState::new(16, &p);
        for step in 0..30 {
            s.step(&p, step);
            for c in 0..s.cells() {
                assert!(s.tcell[c] == 0 || s.tcell[c] == 1);
                if s.tcell[c] == 1 {
                    assert!(s.tlife[c] > 0, "live T cell has lifetime");
                }
            }
        }
    }
}

#[cfg(test)]
mod probe_tests {
    use super::*;

    #[test]
    #[ignore = "diagnostic"]
    fn probe_dynamics() {
        let p = SimcovParams::default();
        let mut s = SimcovState::new(16, &p);
        for step in 0..20 {
            s.step(&p, step);
            let st = s.stats();
            let max_chem = s.chem.iter().fold(0.0f32, |a, &b| a.max(b));
            let max_vir = s.vir.iter().fold(0.0f32, |a, &b| a.max(b));
            println!(
                "step {step}: virq={} inf={} dead={} tc={} max_vir={max_vir:.2} max_chem={max_chem:.2}",
                st[0], st[1], st[2], st[3]
            );
        }
    }
}
