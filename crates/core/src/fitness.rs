//! Workload abstraction and fitness evaluation.
//!
//! The paper's fitness function (§III-E): kernel execution time averaged
//! over the test set; individuals failing any test are invalid and
//! excluded from selection. Here "execution time" is the simulator's
//! modeled cycles.

use crate::edit::Patch;
use gevo_gpu::LaunchStats;
use gevo_ir::Kernel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The outcome of evaluating one program variant on the full test set.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalOutcome {
    /// Mean kernel cycles across test cases; `None` when any test failed
    /// (wrong output, fault, timeout, verification error).
    pub fitness: Option<f64>,
    /// Human-readable reason for failure, when failed.
    pub failure: Option<String>,
    /// Aggregated launch statistics for the (passing) evaluation.
    pub stats: Option<LaunchStats>,
}

impl EvalOutcome {
    /// A passing outcome.
    #[must_use]
    pub fn pass(cycles: f64, stats: LaunchStats) -> EvalOutcome {
        EvalOutcome {
            fitness: Some(cycles),
            failure: None,
            stats: Some(stats),
        }
    }

    /// A failing outcome with a reason.
    #[must_use]
    pub fn fail(reason: impl Into<String>) -> EvalOutcome {
        EvalOutcome {
            fitness: None,
            failure: Some(reason.into()),
            stats: None,
        }
    }

    /// True if every test passed.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.fitness.is_some()
    }
}

/// A program under optimization: pristine kernels plus the machinery to
/// score a variant against the test set.
///
/// Implementations live in `gevo-workloads` (ADEPT-V0/V1, `SIMCoV`); the
/// engine is generic over this trait.
pub trait Workload: Sync {
    /// Identifier used in reports.
    fn name(&self) -> &str;

    /// The pristine kernels (the genome's reference frame). Order is
    /// significant: [`crate::Edit::kernel`] indexes this slice.
    fn kernels(&self) -> &[Kernel];

    /// Runs the variant on every test case and scores it. `eval_seed`
    /// perturbs scheduler interleaving for stochastic workloads
    /// (paper §II-C2); deterministic workloads may ignore it.
    fn evaluate(&self, kernels: &[Kernel], eval_seed: u64) -> EvalOutcome;
}

/// Memoizing evaluator: maps patches to outcomes through a workload,
/// caching by patch content hash. The analysis algorithms (§V) re-evaluate
/// heavily overlapping subsets; the cache keeps that tractable.
pub struct Evaluator<'w> {
    workload: &'w dyn Workload,
    cache: Mutex<HashMap<u64, EvalOutcome>>,
    evals: AtomicUsize,
    cache_hits: AtomicUsize,
    eval_seed: AtomicU64,
}

impl<'w> Evaluator<'w> {
    /// Wraps a workload.
    #[must_use]
    pub fn new(workload: &'w dyn Workload) -> Evaluator<'w> {
        Evaluator {
            workload,
            cache: Mutex::new(HashMap::new()),
            evals: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
            eval_seed: AtomicU64::new(0),
        }
    }

    /// The wrapped workload.
    #[must_use]
    pub fn workload(&self) -> &dyn Workload {
        self.workload
    }

    /// Sets the scheduler seed used for subsequent evaluations (and clears
    /// the cache, since outcomes may differ).
    pub fn set_eval_seed(&self, seed: u64) {
        self.eval_seed.store(seed, Ordering::Relaxed);
        self.cache.lock().expect("cache lock").clear();
    }

    /// Evaluates a patch (cached).
    pub fn evaluate(&self, patch: &Patch) -> EvalOutcome {
        let key = patch.content_hash();
        if let Some(hit) = self.cache.lock().expect("cache lock").get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        let (kernels, _) = patch.apply(self.workload.kernels());
        let outcome = self
            .workload
            .evaluate(&kernels, self.eval_seed.load(Ordering::Relaxed));
        self.evals.fetch_add(1, Ordering::Relaxed);
        self.cache
            .lock()
            .expect("cache lock")
            .insert(key, outcome.clone());
        outcome
    }

    /// Mean cycles of the variant, `None` if invalid.
    pub fn fitness(&self, patch: &Patch) -> Option<f64> {
        self.evaluate(patch).fitness
    }

    /// Cycles of the unmodified program.
    ///
    /// # Panics
    /// Panics if the pristine program fails its own tests — that is a
    /// workload bug, not an evolutionary outcome.
    pub fn baseline(&self) -> f64 {
        self.fitness(&Patch::empty())
            .expect("pristine program must pass its own test set")
    }

    /// Speedup of the variant over the pristine program (>1 is faster),
    /// `None` if invalid.
    pub fn speedup(&self, patch: &Patch) -> Option<f64> {
        let base = self.baseline();
        self.fitness(patch).map(|f| base / f)
    }

    /// Evaluations actually performed (cache misses).
    #[must_use]
    pub fn evals_performed(&self) -> usize {
        self.evals.load(Ordering::Relaxed)
    }

    /// Cache hits served.
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Evaluates many patches in parallel with `threads` workers,
    /// preserving order. Results are cached like single evaluations.
    pub fn evaluate_batch(&self, patches: &[Patch], threads: usize) -> Vec<EvalOutcome> {
        if threads <= 1 || patches.len() <= 1 {
            return patches.iter().map(|p| self.evaluate(p)).collect();
        }
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<EvalOutcome>>> =
            patches.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..threads.min(patches.len()) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= patches.len() {
                        break;
                    }
                    let out = self.evaluate(&patches[i]);
                    *results[i].lock().expect("result slot") = Some(out);
                });
            }
        });
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot lock")
                    .expect("worker filled slot")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::Edit;
    use gevo_ir::{AddrSpace, KernelBuilder, Operand, Special};

    /// A stub workload: fitness = 1000 - 10×(applied deletions), variants
    /// deleting the store "fail".
    struct Stub {
        kernels: Vec<Kernel>,
        store_id: gevo_ir::InstId,
    }

    impl Stub {
        fn new() -> Stub {
            let mut b = KernelBuilder::new("stub");
            let out = b.param_ptr("out", AddrSpace::Global);
            let tid = b.special_i32(Special::ThreadId);
            let a = b.add(tid.into(), Operand::ImmI32(1));
            let c = b.add(a.into(), Operand::ImmI32(2));
            let addr = b.index_addr(Operand::Param(out), tid.into(), 4);
            let store_probe = b.peek_next_id();
            b.store_global_i32(addr.into(), c.into());
            b.ret();
            Stub {
                kernels: vec![b.finish()],
                store_id: store_probe,
            }
        }
    }

    impl Workload for Stub {
        fn name(&self) -> &'static str {
            "stub"
        }
        fn kernels(&self) -> &[Kernel] {
            &self.kernels
        }
        fn evaluate(&self, kernels: &[Kernel], _seed: u64) -> EvalOutcome {
            let k = &kernels[0];
            if k.locate(self.store_id).is_none() {
                return EvalOutcome::fail("output never written");
            }
            #[allow(clippy::cast_precision_loss)]
            let fitness = 900.0 + 10.0 * k.inst_count() as f64;
            EvalOutcome::pass(fitness, LaunchStats::default())
        }
    }

    #[test]
    fn baseline_and_speedup() {
        let w = Stub::new();
        let ev = Evaluator::new(&w);
        let base = ev.baseline();
        let del = Edit::Delete {
            kernel: 0,
            target: w.kernels[0].inst_ids()[1],
        };
        let p = Patch::from_edits(vec![del]);
        let s = ev.speedup(&p).unwrap();
        assert!(s > 1.0, "deleting an instruction speeds the stub up");
        assert!(ev.fitness(&p).unwrap() < base);
    }

    #[test]
    fn failures_are_invalid() {
        let w = Stub::new();
        let ev = Evaluator::new(&w);
        let p = Patch::from_edits(vec![Edit::Delete {
            kernel: 0,
            target: w.store_id,
        }]);
        let out = ev.evaluate(&p);
        assert!(!out.is_valid());
        assert!(out.failure.unwrap().contains("never written"));
        assert_eq!(ev.speedup(&p), None);
    }

    #[test]
    fn cache_avoids_reevaluation() {
        let w = Stub::new();
        let ev = Evaluator::new(&w);
        let p = Patch::empty();
        let _ = ev.evaluate(&p);
        let _ = ev.evaluate(&p);
        let _ = ev.evaluate(&p);
        assert_eq!(ev.evals_performed(), 1);
        assert_eq!(ev.cache_hits(), 2);
    }

    #[test]
    fn batch_matches_serial() {
        let w = Stub::new();
        let ids = w.kernels[0].inst_ids();
        let patches: Vec<Patch> = ids
            .iter()
            .map(|id| {
                Patch::from_edits(vec![Edit::Delete {
                    kernel: 0,
                    target: *id,
                }])
            })
            .collect();
        let serial = Evaluator::new(&w);
        let expected: Vec<EvalOutcome> = patches.iter().map(|p| serial.evaluate(p)).collect();
        let parallel = Evaluator::new(&w);
        let got = parallel.evaluate_batch(&patches, 4);
        assert_eq!(expected, got);
    }

    #[test]
    fn seed_change_clears_cache() {
        let w = Stub::new();
        let ev = Evaluator::new(&w);
        let _ = ev.evaluate(&Patch::empty());
        ev.set_eval_seed(99);
        let _ = ev.evaluate(&Patch::empty());
        assert_eq!(ev.evals_performed(), 2);
    }
}
