//! §VI-E ablation: the "mysterious" redundant memory write.
//!
//! The paper: "one edit duplicates a memory write operation to a region
//! that no subsequent code ever accesses ... Surprisingly, it improves
//! the kernel performance by 1%". This reproduction makes the mechanism
//! concrete: a dead store can open the DRAM row that a subsequent access
//! hits (row-buffer locality). The microbenchmark isolates the effect;
//! see `gevo-gpu`'s `row_buffer_prefetch_effect` test for the assertion.

use gevo_gpu::{Gpu, GpuSpec, LaunchConfig};
use gevo_ir::{AddrSpace, IntBinOp, Kernel, KernelBuilder, Operand, Special};

fn build(with_dead_store: bool, iters: i32) -> Kernel {
    let mut b = KernelBuilder::new(if with_dead_store {
        "dead_store"
    } else {
        "plain"
    });
    let data = b.param_ptr("data", AddrSpace::Global);
    let out = b.param_ptr("out", AddrSpace::Global);
    let tid = b.special_i32(Special::ThreadId);
    let acc = b.mov(Operand::ImmI32(0));
    let i = b.mov(Operand::ImmI32(0));
    let hdr = b.new_block("h");
    let body = b.new_block("b");
    let exit = b.new_block("e");
    b.br(hdr);
    b.switch_to(hdr);
    let c = b.icmp_lt(i.into(), Operand::ImmI32(iters));
    b.cond_br(c.into(), body, exit);
    b.switch_to(body);
    // Stride across DRAM rows so each iteration opens a new row.
    let off = b.mul(i.into(), Operand::ImmI32(2048));
    let addr = b.index_addr(Operand::Param(data), off.into(), 1);
    if with_dead_store {
        // The §VI-E edit: a write nothing ever reads, 128B into the same
        // row as the upcoming load.
        let dead = b.add_i64(addr.into(), Operand::ImmI64(128));
        b.store_global_i32(dead.into(), Operand::ImmI32(0));
    }
    let v = b.load_global_i32(addr.into());
    b.ibin_to(acc, IntBinOp::Add, acc.into(), v.into());
    b.ibin_to(i, IntBinOp::Add, i.into(), Operand::ImmI32(1));
    b.br(hdr);
    b.switch_to(exit);
    let oaddr = b.index_addr(Operand::Param(out), tid.into(), 4);
    b.store_global_i32(oaddr.into(), acc.into());
    b.ret();
    b.finish()
}

fn main() {
    println!("§VI-E: the redundant-write row-buffer effect (microbenchmark)");
    println!();
    let iters = 64;
    for spec in gevo_gpu::GpuSpec::table1() {
        let measure = |k: &Kernel, spec: &GpuSpec| {
            let mut gpu = Gpu::new(spec.clone());
            let data = gpu.mem_mut().alloc(128 * 2048).unwrap();
            let out = gpu.mem_mut().alloc(64).unwrap();
            gpu.launch(k, LaunchConfig::new(1, 1), &[data.into(), out.into()])
                .unwrap()
        };
        let plain = measure(&build(false, iters), &spec);
        let dead = measure(&build(true, iters), &spec);
        #[allow(clippy::cast_precision_loss)]
        let delta = (plain.cycles as f64 / dead.cycles as f64 - 1.0) * 100.0;
        println!(
            "{:<7}: plain {:>7} cycles ({} row hits) | +dead-store {:>7} cycles ({} row hits) | write helps by {delta:+.1}%",
            spec.name, plain.cycles, plain.row_hits, dead.cycles, dead.row_hits
        );
    }
    println!();
    println!("Shape to check: the variant with the extra (dead) write is *faster*");
    println!("because the write opens the DRAM row before the load arrives —");
    println!("a concrete mechanism behind the paper's undecipherable 1% edit.");
}
