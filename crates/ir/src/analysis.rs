//! Dataflow analyses over a kernel's CFG, computed once at compile
//! time so the interpreter's hot loops can consume their results as
//! per-instruction facts.
//!
//! The only analysis so far is **warp-uniformity** ([`uniformity`]): a
//! register is *uniform* when, at every point a lane could read it, all
//! active lanes of the warp would read the same value. The GPU backend
//! bakes this into its lowered instruction stream so uniform compute,
//! loads and stores execute **once per warp** with a broadcast write
//! instead of a per-lane mask walk (DESIGN.md §3.8), and conditional
//! branches on uniform registers are decided with a single read.
//!
//! The lattice has two points per register — `uniform ⊒ varying` — and
//! the fixpoint is optimistic: start everything uniform, demote until
//! stable. Demotion is monotone (a register never returns to uniform),
//! so termination is bounded by `registers + blocks` demotions.
//!
//! Soundness rests on three facts about the executor:
//!
//! 1. Register files start as per-register typed sentinels, identical
//!    across lanes — an undefined read is uniform.
//! 2. Outside divergent control flow, a warp executes under its
//!    top-level mask, and that mask only shrinks warp-wide (a
//!    non-divergent `Ret` retires every active lane at once). A def
//!    executed there writes every lane any later read can see active.
//! 3. Inside divergent control flow a def covers only a sub-mask, so
//!    lanes reactivated at reconvergence could hold stale values —
//!    which is exactly why defs in divergent-flow blocks are demoted,
//!    and why a `Ret` reachable under divergence (which retires lanes
//!    piecemeal, leaving partial top-level masks behind) demotes
//!    every block.

use crate::cfg::Cfg;
use crate::inst::{BlockId, Op, Operand, Special, TermKind};
use crate::kernel::Kernel;

/// Results of the warp-uniformity analysis; see [`uniformity`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformityInfo {
    /// Per-register verdict, indexed by `Reg.0`: `true` means every
    /// reaching def (and the initial sentinel) gives all active lanes
    /// the same value.
    pub uniform_regs: Vec<bool>,
    /// Per-block flag: the block can execute under a divergence frame
    /// (it lies in the influence region of some non-uniform branch), so
    /// defs inside it only cover a sub-mask of the warp.
    pub div_flow: Vec<bool>,
}

impl UniformityInfo {
    /// True when reading `op` yields the same value in every active
    /// lane: immediates and parameters trivially, lane-independent
    /// specials, and registers the fixpoint proved uniform.
    #[must_use]
    pub fn operand_uniform(&self, op: &Operand) -> bool {
        match op {
            Operand::Reg(r) => self
                .uniform_regs
                .get(r.0 as usize)
                .copied()
                .unwrap_or(false),
            Operand::ImmI32(_)
            | Operand::ImmI64(_)
            | Operand::ImmF32(_)
            | Operand::ImmBool(_)
            | Operand::Param(_) => true,
            Operand::Special(s) => !matches!(s, Special::ThreadId | Special::LaneId),
        }
    }

    /// Number of registers proved uniform.
    #[must_use]
    pub fn uniform_count(&self) -> usize {
        self.uniform_regs.iter().filter(|&&u| u).count()
    }
}

/// Whether a def of this op yields the same value in every lane that
/// executes it, assuming every operand read is uniform. Atomics return
/// per-lane serialization results and shuffles read other lanes'
/// (possibly stale) registers, so neither is ever uniform; ballots and
/// `activemask` derive from the active mask itself, which all active
/// lanes share.
fn def_uniform_given_uniform_sources(op: Op) -> bool {
    match op {
        Op::AtomicAdd { .. } | Op::AtomicMax { .. } | Op::AtomicCas { .. } => false,
        Op::ShflSync | Op::ShflUpSync => false,
        // Everything else (pure scalar compute, RNG mixing, loads from
        // a uniform address, ballots/activemask) maps uniform inputs —
        // or the shared mask — to one warp-wide value.
        _ => true,
    }
}

/// Ops whose result is uniform regardless of operand uniformity, because
/// it is computed from the warp's shared active mask and broadcast to
/// every active lane.
fn def_uniform_unconditionally(op: Op) -> bool {
    matches!(op, Op::BallotSync | Op::ActiveMask)
}

/// Computes warp-uniformity facts for `kernel` (with its prebuilt
/// [`Cfg`]) by optimistic fixpoint. See the module docs for the lattice
/// and the soundness argument; DESIGN.md §3.8 for how the GPU backend
/// consumes the result.
#[must_use]
pub fn uniformity(kernel: &Kernel, cfg: &Cfg) -> UniformityInfo {
    let n_blocks = kernel.blocks.len();
    let mut info = UniformityInfo {
        uniform_regs: vec![true; kernel.reg_count()],
        div_flow: vec![false; n_blocks],
    };
    loop {
        let mut changed = false;

        // 1. Divergent-flow regions: every block reachable from a
        //    non-uniform branch's successors without passing through its
        //    reconvergence point can run under a divergence frame.
        for (b, block) in kernel.blocks.iter().enumerate() {
            let TermKind::CondBr {
                cond,
                if_true,
                if_false,
            } = block.term.kind
            else {
                continue;
            };
            if info.operand_uniform(&cond) {
                continue;
            }
            let reconv = cfg.reconvergence(BlockId(u32::try_from(b).expect("block idx")));
            for start in [if_true, if_false] {
                changed |= mark_influence(kernel, &mut info.div_flow, start, reconv);
            }
        }

        // A `Ret` under divergence retires lanes piecemeal: the warp's
        // top-level mask afterwards is partial, so *no* block is safe
        // from sub-mask execution. Demote everything (conservative; the
        // Table-1 kernels never take this path — their exits are
        // straight-line).
        let partial_exit = kernel
            .blocks
            .iter()
            .enumerate()
            .any(|(b, blk)| info.div_flow[b] && matches!(blk.term.kind, TermKind::Ret));
        if partial_exit && !info.div_flow.iter().all(|&d| d) {
            info.div_flow.iter_mut().for_each(|d| *d = true);
            changed = true;
        }

        // 2. Demote registers: a def under divergent flow, with a
        //    varying source, or of an inherently per-lane op makes its
        //    destination varying everywhere (registers are multi-def;
        //    uniformity must hold for every reaching def).
        for (b, block) in kernel.blocks.iter().enumerate() {
            for inst in &block.instrs {
                let Some(dst) = inst.dst else { continue };
                if !info.uniform_regs[dst.0 as usize] {
                    continue;
                }
                let uniform = !info.div_flow[b]
                    && (def_uniform_unconditionally(inst.op)
                        || (def_uniform_given_uniform_sources(inst.op)
                            && inst.args.iter().all(|a| info.operand_uniform(a))));
                if !uniform {
                    info.uniform_regs[dst.0 as usize] = false;
                    changed = true;
                }
            }
        }

        if !changed {
            return info;
        }
    }
}

/// Marks the influence region of one divergent branch: blocks reachable
/// from `start` without passing through `reconv`. Returns whether any
/// flag flipped.
fn mark_influence(
    kernel: &Kernel,
    div_flow: &mut [bool],
    start: BlockId,
    reconv: Option<BlockId>,
) -> bool {
    let mut changed = false;
    let mut stack = vec![start];
    let mut seen = vec![false; kernel.blocks.len()];
    while let Some(b) = stack.pop() {
        if Some(b) == reconv || seen[b.index()] {
            continue;
        }
        seen[b.index()] = true;
        if !div_flow[b.index()] {
            div_flow[b.index()] = true;
            changed = true;
        }
        stack.extend(kernel.blocks[b.index()].term.successors());
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::types::AddrSpace;

    fn analyse(k: &Kernel) -> UniformityInfo {
        uniformity(k, &Cfg::build(k))
    }

    #[test]
    fn straight_line_imm_chain_is_uniform() {
        let mut b = KernelBuilder::new("u");
        let out = b.param_ptr("out", AddrSpace::Global);
        let a = b.add(Operand::ImmI32(1), Operand::ImmI32(2));
        let c = b.add(a.into(), Operand::ImmI32(3));
        let tid = b.special_i32(Special::ThreadId);
        let addr = b.index_addr(Operand::Param(out), tid.into(), 4);
        b.store_global_i32(addr.into(), c.into());
        b.ret();
        let k = b.finish();
        let info = analyse(&k);
        assert!(info.uniform_regs[a.0 as usize], "imm-only def");
        assert!(info.uniform_regs[c.0 as usize], "uniform-chain def");
        assert!(!info.uniform_regs[tid.0 as usize], "tid varies per lane");
        assert!(
            !info.uniform_regs[addr.0 as usize],
            "address derived from tid"
        );
        assert!(info.div_flow.iter().all(|&d| !d), "no branches at all");
    }

    #[test]
    fn lane_seeds_propagate_varying() {
        let mut b = KernelBuilder::new("v");
        let lane = b.special_i32(Special::LaneId);
        let x = b.add(lane.into(), Operand::ImmI32(1));
        let y = b.add(x.into(), Operand::ImmI32(0));
        b.ret();
        let k = b.finish();
        let info = analyse(&k);
        assert!(!info.uniform_regs[lane.0 as usize]);
        assert!(!info.uniform_regs[x.0 as usize]);
        assert!(!info.uniform_regs[y.0 as usize], "transitive demotion");
    }

    #[test]
    fn uniform_specials_stay_uniform() {
        let mut b = KernelBuilder::new("s");
        let bd = b.special_i32(Special::BlockDim);
        let wid = b.special_i32(Special::WarpId);
        let mix = b.add(bd.into(), wid.into());
        b.ret();
        let k = b.finish();
        let info = analyse(&k);
        assert!(info.uniform_regs[bd.0 as usize]);
        assert!(info.uniform_regs[wid.0 as usize], "warp id is warp-shared");
        assert!(info.uniform_regs[mix.0 as usize]);
    }

    /// Builds `if (tid < 4) { body(b) } else {} join`, returning the
    /// kernel plus the registers the closure defined in the then-block.
    fn divergent_diamond(
        body: impl FnOnce(&mut KernelBuilder) -> Vec<crate::inst::Reg>,
    ) -> (Kernel, Vec<crate::inst::Reg>) {
        let mut b = KernelBuilder::new("d");
        let tid = b.special_i32(Special::ThreadId);
        let cond = b.icmp_lt(tid.into(), Operand::ImmI32(4));
        let then_b = b.new_block("t");
        let else_b = b.new_block("e");
        let join_b = b.new_block("j");
        b.cond_br(cond.into(), then_b, else_b);
        b.switch_to(then_b);
        let defined = body(&mut b);
        b.br(join_b);
        b.switch_to(else_b);
        b.br(join_b);
        b.switch_to(join_b);
        b.ret();
        (b.finish(), defined)
    }

    #[test]
    fn defs_under_divergence_are_demoted() {
        // `x = 1 + 2` is imm-only, but it executes under the divergent
        // `tid < 4` mask: lanes in the else-path keep the sentinel.
        let (k, defs) = divergent_diamond(|b| vec![b.add(Operand::ImmI32(1), Operand::ImmI32(2))]);
        let info = analyse(&k);
        assert!(info.div_flow[1], "then-block is in the influence region");
        assert!(info.div_flow[2], "else-block too");
        assert!(!info.div_flow[0], "entry is not");
        assert!(!info.div_flow[3], "join (reconvergence) is not");
        assert!(!info.uniform_regs[defs[0].0 as usize], "sub-mask def");
    }

    #[test]
    fn uniform_branch_creates_no_divergent_region() {
        let mut b = KernelBuilder::new("ub");
        let t = b.new_block("t");
        let j = b.new_block("j");
        b.cond_br(Operand::ImmBool(false), t, j);
        b.switch_to(t);
        let x = b.add(Operand::ImmI32(5), Operand::ImmI32(6));
        b.br(j);
        b.switch_to(j);
        b.ret();
        let k = b.finish();
        let info = analyse(&k);
        assert!(info.div_flow.iter().all(|&d| !d), "imm cond cannot diverge");
        assert!(info.uniform_regs[x.0 as usize]);
    }

    #[test]
    fn branch_on_demoted_register_divergifies_its_region() {
        // cond starts out "uniform" optimistically, but its def reads
        // the lane id; the fixpoint must demote the def and THEN the
        // branch's influence region — a two-round fixpoint.
        let mut b = KernelBuilder::new("two");
        let lane = b.special_i32(Special::LaneId);
        let cond = b.icmp_lt(lane.into(), Operand::ImmI32(2));
        let t = b.new_block("t");
        let j = b.new_block("j");
        b.cond_br(cond.into(), t, j);
        b.switch_to(t);
        let x = b.add(Operand::ImmI32(1), Operand::ImmI32(1));
        b.br(j);
        b.switch_to(j);
        b.ret();
        let k = b.finish();
        let info = analyse(&k);
        assert!(!info.uniform_regs[cond.0 as usize]);
        assert!(info.div_flow[1]);
        assert!(!info.uniform_regs[x.0 as usize]);
    }

    #[test]
    fn ret_under_divergence_demotes_everything() {
        // then-path exits directly: lanes retire piecemeal, so even the
        // entry block's defs are no longer mask-complete afterwards.
        let mut b = KernelBuilder::new("pr");
        let pre = b.add(Operand::ImmI32(3), Operand::ImmI32(4));
        let tid = b.special_i32(Special::ThreadId);
        let cond = b.icmp_lt(tid.into(), Operand::ImmI32(4));
        let t = b.new_block("t");
        let j = b.new_block("j");
        b.cond_br(cond.into(), t, j);
        b.switch_to(t);
        b.ret();
        b.switch_to(j);
        let post = b.add(Operand::ImmI32(5), Operand::ImmI32(6));
        b.ret();
        let k = b.finish();
        let info = analyse(&k);
        assert!(info.div_flow.iter().all(|&d| d), "partial exit: all blocks");
        assert!(!info.uniform_regs[pre.0 as usize]);
        assert!(!info.uniform_regs[post.0 as usize]);
    }

    #[test]
    fn atomics_and_shuffles_never_define_uniform() {
        let mut b = KernelBuilder::new("as");
        let out = b.param_ptr("out", AddrSpace::Global);
        let old = b.atomic_add(AddrSpace::Global, Operand::Param(out), Operand::ImmI32(1));
        let shf = b.shfl(Operand::ImmI32(7), Operand::ImmI32(0));
        b.ret();
        let k = b.finish();
        let info = analyse(&k);
        assert!(
            !info.uniform_regs[old.0 as usize],
            "atomics serialize per lane"
        );
        assert!(
            !info.uniform_regs[shf.0 as usize],
            "shuffles read per-lane state"
        );
    }

    #[test]
    fn ballot_is_uniform_outside_divergence_only() {
        let mut b = KernelBuilder::new("bal");
        let lane = b.special_i32(Special::LaneId);
        let p = b.icmp_lt(lane.into(), Operand::ImmI32(2));
        let votes = b.ballot(p.into());
        b.ret();
        let k = b.finish();
        let info = analyse(&k);
        assert!(
            info.uniform_regs[votes.0 as usize],
            "ballot broadcasts one mask even from a varying predicate"
        );

        let (dk, defs) = divergent_diamond(|b| vec![b.ballot(Operand::ImmBool(true))]);
        let dinfo = analyse(&dk);
        assert!(
            !dinfo.uniform_regs[defs[0].0 as usize],
            "ballot under divergence covers a sub-mask"
        );
    }

    #[test]
    fn loads_from_uniform_addresses_are_uniform() {
        let mut b = KernelBuilder::new("ld");
        let out = b.param_ptr("out", AddrSpace::Global);
        let v = b.load_global_i32(Operand::Param(out));
        let tid = b.special_i32(Special::ThreadId);
        let addr = b.index_addr(Operand::Param(out), tid.into(), 4);
        let w = b.load_global_i32(addr.into());
        b.ret();
        let k = b.finish();
        let info = analyse(&k);
        assert!(info.uniform_regs[v.0 as usize], "one address, one value");
        assert!(!info.uniform_regs[w.0 as usize], "per-lane addresses");
    }

    #[test]
    fn multi_def_register_needs_every_def_uniform() {
        let mut b = KernelBuilder::new("md");
        let lane = b.special_i32(Special::LaneId);
        let x = b.add(Operand::ImmI32(1), Operand::ImmI32(2));
        b.mov_to(x, lane.into()); // second def reads the lane id
        b.ret();
        let k = b.finish();
        let info = analyse(&k);
        assert!(!info.uniform_regs[x.0 as usize]);
    }

    #[test]
    fn loop_counters_stay_uniform() {
        // for (i = 0; i < 10; i++) — the canonical uniform loop: the
        // back-edge and counter must both be proved uniform, because
        // that is what lets the executor skip the per-lane predicate
        // walk on every iteration.
        let mut b = KernelBuilder::new("loop");
        let i = b.mov(Operand::ImmI32(0));
        let head = b.new_block("head");
        let body = b.new_block("body");
        let done = b.new_block("done");
        b.br(head);
        b.switch_to(head);
        let c = b.icmp_lt(i.into(), Operand::ImmI32(10));
        b.cond_br(c.into(), body, done);
        b.switch_to(body);
        let next = b.add(i.into(), Operand::ImmI32(1));
        b.mov_to(i, next.into());
        b.br(head);
        b.switch_to(done);
        b.ret();
        let k = b.finish();
        let info = analyse(&k);
        assert!(info.uniform_regs[i.0 as usize], "counter");
        assert!(info.uniform_regs[c.0 as usize], "bound check");
        assert!(info.div_flow.iter().all(|&d| !d), "uniform back-edge");
    }
}
