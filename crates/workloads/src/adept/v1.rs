//! ADEPT-V1: the expert hand-tuned version (paper §III-B).
//!
//! Two kernels (forward + reverse, "623 lines / 1707 LLVM-IR
//! instructions"), mirroring the paper's Fig. 9 structure around data
//! exchange:
//!
//! * intra-warp neighbor exchange through **warp shuffles** (private
//!   registers);
//! * cross-warp handoff through small `sh_prev_*` shared arrays written
//!   by the **last lane** of each warp;
//! * `local_*` shared arrays maintained **only in the contraction phase**
//!   (`diag >= maxSize`), which consumers use in that phase;
//! * conservative `activemask` + `ballot_sync` guards before the
//!   register-exchange region (§VI-B).
//!
//! The paper's epistatic edits live at exactly these sites:
//!
//! | paper edit | site | curated edit |
//! |---|---|---|
//! | 5 | `if (lane == last)` publish of `sh_prev_*` | cond → `lane == 0` |
//! | 6 | `if (diag >= maxSize)` publish of `local_*` | cond → `is_valid` |
//! | 8 | `if (diag >= maxSize)` consumer of the left value | cond → the line-14 guard (`active`) |
//! | 10 | `if (diag >= maxSize)` consumer of the diagonal value | cond → `active` |
//!
//! The reverse kernel repeats the same structure; its enabler/consumer
//! pair is the paper's second epistatic subgroup (edits 0 and 11).

use gevo_ir::{AddrSpace, CmpPred, InstId, Kernel, KernelBuilder, Operand, Reg, Special};

use crate::sw_cpu::score;

/// Which pass the kernel computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Forward: align `a` vs `b`, report best score + end positions.
    Forward,
    /// Reverse: align the reversed prefixes ending at the forward end
    /// positions (read from the forward kernel's output buffer).
    Reverse,
}

/// Annotated sites in one V1 kernel (forward or reverse).
#[derive(Debug, Clone, Copy)]
pub struct V1Sites {
    /// Terminator of the `lane == last` publish (paper edit 5 site).
    pub publish_sh_cond: InstId,
    /// Terminator of the `diag >= maxSize` local publish (edit 6 site).
    pub publish_local_cond: InstId,
    /// Terminator of the left-value consumer switch (edit 8 site).
    pub use_left_cond: InstId,
    /// Terminator of the diagonal-value consumer switch (edit 10 site).
    pub use_diag_cond: InstId,
    /// `lane == 0` register (edit 5's replacement operand).
    pub lane0_bool: Reg,
    /// The line-14 guard register (edits 8/10's replacement operand).
    pub active_bool: Reg,
    /// `tid < n` register (edit 6's replacement operand).
    pub valid_bool: Reg,
    /// Deletable `ballot_sync` (paper §VI-B).
    pub ballot: InstId,
    /// Deletable `activemask`.
    pub activemask: InstId,
    /// Deletable redundant integer division.
    pub recompute: InstId,
    /// Deletable dead shared store.
    pub dead_store: InstId,
    /// Deletable dead shared load.
    pub dead_load: InstId,
    /// Deletable dead warp shuffle.
    pub dead_shfl: InstId,
}

/// Shared-word arrays per block of `t` threads: `sh_prev_H`, `sh_prev_HH`,
/// `local_H`, `local_HH`, `red_score`, `red_row`.
pub(crate) const V1_ARRAYS: u32 = 6;

/// Builds a V1 kernel (forward or reverse) for blocks of `block_threads`.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn build_v1(block_threads: u32, dir: Dir) -> (Kernel, V1Sites) {
    let t = i64::from(block_threads);
    let name = match dir {
        Dir::Forward => "adept_v1_fwd",
        Dir::Reverse => "adept_v1_rev",
    };
    let mut b = KernelBuilder::new(name);
    b.shared_bytes(V1_ARRAYS * block_threads * 4);

    let p_seq_a = b.param_ptr("seq_a", AddrSpace::Global);
    let p_seq_b = b.param_ptr("seq_b", AddrSpace::Global);
    let p_offs_a = b.param_ptr("offs_a", AddrSpace::Global);
    let p_offs_b = b.param_ptr("offs_b", AddrSpace::Global);
    let p_lens_a = b.param_ptr("lens_a", AddrSpace::Global);
    let p_lens_b = b.param_ptr("lens_b", AddrSpace::Global);
    let p_fwd = match dir {
        Dir::Forward => None,
        Dir::Reverse => Some(b.param_ptr("fwd_out", AddrSpace::Global)),
    };
    let p_out = b.param_ptr("out", AddrSpace::Global);
    let p_scratch = b.param_ptr("scratch", AddrSpace::Global);

    b.loc("entry");
    let tid = b.special_i32(Special::ThreadId);
    let bid = b.special_i32(Special::BlockId);
    let lane = b.special_i32(Special::LaneId);
    let warp = b.special_i32(Special::WarpId);
    let load_meta = |b: &mut KernelBuilder, ptr: u16, idx: Operand| {
        let addr = b.index_addr(Operand::Param(ptr), idx, 4);
        b.load_global_i32(addr.into())
    };
    let off_a = load_meta(&mut b, p_offs_a, bid.into());
    let off_b = load_meta(&mut b, p_offs_b, bid.into());
    let len_a = load_meta(&mut b, p_lens_a, bid.into());
    let len_b = load_meta(&mut b, p_lens_b, bid.into());

    // Effective dimensions and element index bases.
    // Forward: m = len_a, n = len_b, element (i, j) = (off_a+i, off_b+j).
    // Reverse: m = end_a+1, n = end_b+1 from the forward output;
    //          element (i, j) = (off_a + end_a − i, off_b + end_b − j).
    let (m, n, ea, eb) = match dir {
        Dir::Forward => (len_a, len_b, None, None),
        Dir::Reverse => {
            let fwd = p_fwd.expect("reverse kernel has fwd_out");
            let fwd_idx = b.mul(bid.into(), Operand::ImmI32(4));
            let fwd0 = b.index_addr(Operand::Param(fwd), fwd_idx.into(), 4);
            let ea_addr = b.add_i64(fwd0.into(), Operand::ImmI64(4));
            let eb_addr = b.add_i64(fwd0.into(), Operand::ImmI64(8));
            let ea_raw = b.load_global_i32(ea_addr.into());
            let eb_raw = b.load_global_i32(eb_addr.into());
            let ea = b.max(ea_raw.into(), Operand::ImmI32(-1));
            let eb = b.max(eb_raw.into(), Operand::ImmI32(-1));
            let m = b.add(ea.into(), Operand::ImmI32(1));
            let n = b.add(eb.into(), Operand::ImmI32(1));
            (m, n, Some(ea), Some(eb))
        }
    };

    let is_valid = b.icmp_lt(tid.into(), n.into());

    // Per-thread `b` element (clamped for idle threads).
    let n_minus1 = b.sub(n.into(), Operand::ImmI32(1));
    let nm1c = b.max(n_minus1.into(), Operand::ImmI32(0));
    let jj = b.min(tid.into(), nm1c.into());
    let b_elem_idx = match dir {
        Dir::Forward => b.add(off_b.into(), jj.into()),
        Dir::Reverse => {
            let ebc = b.max(eb.expect("reverse").into(), Operand::ImmI32(0));
            let rel = b.sub(ebc.into(), jj.into());
            b.add(off_b.into(), rel.into())
        }
    };
    let sb_addr = b.index_addr(Operand::Param(p_seq_b), b_elem_idx.into(), 4);
    let sb = b.load_global_i32(sb_addr.into());

    // Warp-structure predicates (the Fig. 9 conditions).
    let lane0 = b.icmp_eq(lane.into(), Operand::ImmI32(0));
    let wsz_m1 = b.sub(Operand::Special(Special::WarpSize), Operand::ImmI32(1));
    let lane_last = b.icmp_eq(lane.into(), wsz_m1.into());
    let warp_ne0 = b.icmp(CmpPred::Ne, warp.into(), Operand::ImmI32(0));

    // DP state.
    let prev_h = b.mov(Operand::ImmI32(0));
    let prev_hh = b.mov(Operand::ImmI32(0));
    let best_s = b.mov(Operand::ImmI32(0));
    let best_i = b.mov(Operand::ImmI32(-1));
    let diag = b.mov(Operand::ImmI32(0));
    let m_plus_n = b.add(m.into(), n.into());
    let total = b.sub(m_plus_n.into(), Operand::ImmI32(1));
    // The `diag >= maxSize` phase switch of Fig. 9. In this launch
    // configuration the developers size maxSize so the scratchpad
    // fallback never engages (`maxSize = m + n` > any diagonal): the
    // hand-tuned code always exchanges through registers + the sh_prev
    // warp handoff. GEVO's edits 6/8/10 turn the scratchpad path on for
    // every thread, eliminating the divergent register exchange — the
    // paper's §VI-A finding.
    let max_size = b.mov(m_plus_n.into());

    // Shared addresses, hoisted (this is hand-tuned code).
    let sh_h_pub = b.index_addr(Operand::ImmI64(0), warp.into(), 4);
    let sh_hh_pub = b.index_addr(Operand::ImmI64(t * 4), warp.into(), 4);
    let warp_m1 = b.sub(warp.into(), Operand::ImmI32(1));
    let warp_m1c = b.max(warp_m1.into(), Operand::ImmI32(0));
    let sh_h_nb = b.index_addr(Operand::ImmI64(0), warp_m1c.into(), 4);
    let sh_hh_nb = b.index_addr(Operand::ImmI64(t * 4), warp_m1c.into(), 4);
    let loc_h_pub = b.index_addr(Operand::ImmI64(2 * t * 4), tid.into(), 4);
    let loc_hh_pub = b.index_addr(Operand::ImmI64(3 * t * 4), tid.into(), 4);
    let tid_m1 = b.sub(tid.into(), Operand::ImmI32(1));
    let nbi = b.max(tid_m1.into(), Operand::ImmI32(0));
    let loc_h_nb = b.index_addr(Operand::ImmI64(2 * t * 4), nbi.into(), 4);
    let loc_hh_nb = b.index_addr(Operand::ImmI64(3 * t * 4), nbi.into(), 4);
    let red_s_addr = b.index_addr(Operand::ImmI64(4 * t * 4), tid.into(), 4);
    let red_i_addr = b.index_addr(Operand::ImmI64(5 * t * 4), tid.into(), 4);
    let gtid = b.global_thread_id();
    let scratch_addr = b.index_addr(Operand::Param(p_scratch), gtid.into(), 4);
    let _ = scratch_addr; // kept for pool richness; V1's dead store is shared

    // Exchange result registers (written on all arms).
    let nb_h = b.fresh_reg(gevo_ir::Ty::I32);
    let nb_hh = b.fresh_reg(gevo_ir::Ty::I32);

    let diag_hdr = b.new_block("diag_hdr");
    let dbody = b.new_block("dbody");
    let pub_a = b.new_block("pub_a");
    let a_done = b.new_block("a_done");
    let pub_b = b.new_block("pub_b");
    let b_done = b.new_block("b_done");
    let comp = b.new_block("comp");
    let c_loc = b.new_block("c_loc");
    let c_reg = b.new_block("c_reg");
    let c_sh = b.new_block("c_sh");
    let c_shfl = b.new_block("c_shfl");
    let c_join = b.new_block("c_join");
    let d_loc = b.new_block("d_loc");
    let d_reg = b.new_block("d_reg");
    let d_sh = b.new_block("d_sh");
    let d_shfl = b.new_block("d_shfl");
    let d_join = b.new_block("d_join");
    let skip = b.new_block("skip");
    let after = b.new_block("after");
    let red_start = b.new_block("red_start");
    let red_hdr = b.new_block("red_hdr");
    let red_body = b.new_block("red_body");
    let red_done = b.new_block("red_done");
    let done = b.new_block("done");

    b.br(diag_hdr);

    b.switch_to(diag_hdr);
    let more = b.icmp_lt(diag.into(), total.into());
    b.cond_br(more.into(), dbody, after);

    b.switch_to(dbody);
    b.loc("v1_phase");
    let diag_ge_max = b.icmp_ge(diag.into(), max_size.into());

    // Region A: cross-warp publish by the last lane (edit 5 site).
    b.loc("v1_publish_sh");
    let publish_sh_cond = b.peek_next_id();
    b.cond_br(lane_last.into(), pub_a, a_done);
    b.switch_to(pub_a);
    b.store_shared_i32(sh_h_pub.into(), prev_h.into());
    b.store_shared_i32(sh_hh_pub.into(), prev_hh.into());
    b.br(a_done);

    // Region B: contraction-phase local publish (edit 6 site).
    b.switch_to(a_done);
    b.loc("v1_publish_local");
    let publish_local_cond = b.peek_next_id();
    b.cond_br(diag_ge_max.into(), pub_b, b_done);
    b.switch_to(pub_b);
    b.store_shared_i32(loc_h_pub.into(), prev_h.into());
    b.store_shared_i32(loc_hh_pub.into(), prev_hh.into());
    b.br(b_done);

    b.switch_to(b_done);
    b.sync_threads();

    // Conservative warp-sync guards before register exchange (§VI-B).
    b.loc("v1_warp_guards");
    let activemask = b.peek_next_id();
    let _am = b.activemask();
    let ballot = b.peek_next_id();
    let _bl = b.ballot(is_valid.into());

    // Small redundancies the paper's independent edits delete. The
    // recompute chain ends in a spill store so the backend cannot remove
    // it from the *pristine* kernel; deleting the spill lets DCE clean up
    // the division, exactly like a single GEVO edit plus LLVM cleanup.
    b.loc("v1_recompute");
    let rdiv = b.div(tid.into(), Operand::Special(Special::WarpSize));
    let recompute = b.peek_next_id();
    b.store_shared_i32(red_i_addr.into(), rdiv.into());
    b.loc("v1_dead_store");
    let dead_store = b.peek_next_id();
    b.store_shared_i32(red_s_addr.into(), best_i.into());
    b.loc("v1_dead_load");
    let dead_load = b.peek_next_id();
    let _junk = b.load_shared_i32(red_s_addr.into());
    b.loc("v1_dead_shfl");
    let dead_shfl = b.peek_next_id();
    let _jshfl = b.shfl_up(prev_h.into(), Operand::ImmI32(1));

    // The line-14 guard (paper Fig. 9).
    b.loc("v1_guard");
    let i = b.sub(diag.into(), tid.into());
    let ge0 = b.icmp_ge(i.into(), Operand::ImmI32(0));
    let ltm = b.icmp_lt(i.into(), m.into());
    let in_range = b.and(ge0.into(), ltm.into());
    let active = b.and(is_valid.into(), in_range.into());
    b.cond_br(active.into(), comp, skip);

    // Region C: left-value consumer (edit 8 site).
    b.switch_to(comp);
    b.loc("v1_exchange_left");
    let use_left_cond = b.peek_next_id();
    b.cond_br(diag_ge_max.into(), c_loc, c_reg);

    b.switch_to(c_loc);
    b.load_to(
        nb_h,
        AddrSpace::Shared,
        gevo_ir::MemTy::I32,
        loc_h_nb.into(),
    );
    b.br(c_join);

    b.switch_to(c_reg);
    let cross = b.and(warp_ne0.into(), lane0.into());
    b.cond_br(cross.into(), c_sh, c_shfl);
    b.switch_to(c_sh);
    b.load_to(nb_h, AddrSpace::Shared, gevo_ir::MemTy::I32, sh_h_nb.into());
    b.br(c_join);
    b.switch_to(c_shfl);
    // Shuffle arm: the boundary bookkeeping real warp-exchange code does
    // (source-lane math, in-warp check, first-column fallback).
    let up = b.shfl_up(prev_h.into(), Operand::ImmI32(1));
    let src_lane = b.sub(lane.into(), Operand::ImmI32(1));
    let src_ok = b.icmp_ge(src_lane.into(), Operand::ImmI32(0));
    let col0 = b.icmp_eq(tid.into(), Operand::ImmI32(0));
    let in_warp = b.and(src_ok.into(), warp_ne0.into());
    let usable = b.or(in_warp.into(), src_ok.into());
    let _ = col0;
    let guarded = b.select(usable.into(), up.into(), Operand::ImmI32(0));
    b.mov_to(nb_h, guarded.into());
    b.br(c_join);

    // Region D: diagonal-value consumer (edit 10 site).
    b.switch_to(c_join);
    b.loc("v1_exchange_diag");
    let use_diag_cond = b.peek_next_id();
    b.cond_br(diag_ge_max.into(), d_loc, d_reg);

    b.switch_to(d_loc);
    b.load_to(
        nb_hh,
        AddrSpace::Shared,
        gevo_ir::MemTy::I32,
        loc_hh_nb.into(),
    );
    b.br(d_join);

    b.switch_to(d_reg);
    let cross2 = b.and(warp_ne0.into(), lane0.into());
    b.cond_br(cross2.into(), d_sh, d_shfl);
    b.switch_to(d_sh);
    b.load_to(
        nb_hh,
        AddrSpace::Shared,
        gevo_ir::MemTy::I32,
        sh_hh_nb.into(),
    );
    b.br(d_join);
    b.switch_to(d_shfl);
    let up2 = b.shfl_up(prev_hh.into(), Operand::ImmI32(1));
    let src_lane2 = b.sub(lane.into(), Operand::ImmI32(1));
    let src_ok2 = b.icmp_ge(src_lane2.into(), Operand::ImmI32(0));
    let in_warp2 = b.and(src_ok2.into(), warp_ne0.into());
    let usable2 = b.or(in_warp2.into(), src_ok2.into());
    let guarded2 = b.select(usable2.into(), up2.into(), Operand::ImmI32(0));
    b.mov_to(nb_hh, guarded2.into());
    b.br(d_join);

    // Cell computation (identical recurrence to V0 / the CPU oracle).
    b.switch_to(d_join);
    b.loc("v1_cell");
    let a_elem_idx = match dir {
        Dir::Forward => b.add(off_a.into(), i.into()),
        Dir::Reverse => {
            let eac = b.max(ea.expect("reverse").into(), Operand::ImmI32(0));
            let rel = b.sub(eac.into(), i.into());
            b.add(off_a.into(), rel.into())
        }
    };
    let sa_addr = b.index_addr(Operand::Param(p_seq_a), a_elem_idx.into(), 4);
    let sa = b.load_global_i32(sa_addr.into());
    let eq = b.icmp_eq(sa.into(), sb.into());
    let sc = b.select(
        eq.into(),
        Operand::ImmI32(score::MATCH),
        Operand::ImmI32(score::MISMATCH),
    );
    let j0 = b.icmp_eq(tid.into(), Operand::ImmI32(0));
    let i0 = b.icmp_eq(i.into(), Operand::ImmI32(0));
    let d0 = b.or(j0.into(), i0.into());
    let dh = b.select(d0.into(), Operand::ImmI32(0), nb_hh.into());
    let lh = b.select(j0.into(), Operand::ImmI32(0), nb_h.into());
    let uh = b.select(i0.into(), Operand::ImmI32(0), prev_h.into());
    let h_diag = b.add(dh.into(), sc.into());
    let h_left = b.add(lh.into(), Operand::ImmI32(score::GAP));
    let h_up = b.add(uh.into(), Operand::ImmI32(score::GAP));
    let h1 = b.max(h_diag.into(), h_left.into());
    let h2 = b.max(h1.into(), h_up.into());
    let h = b.max(h2.into(), Operand::ImmI32(0));
    let better = b.icmp(CmpPred::Gt, h.into(), best_s.into());
    b.select_to(best_s, better.into(), h.into(), best_s.into());
    b.select_to(best_i, better.into(), i.into(), best_i.into());
    b.mov_to(prev_hh, prev_h.into());
    b.mov_to(prev_h, h.into());
    b.br(skip);

    b.switch_to(skip);
    b.loc("v1_step");
    b.sync_threads();
    b.ibin_to(
        diag,
        gevo_ir::IntBinOp::Add,
        diag.into(),
        Operand::ImmI32(1),
    );
    b.br(diag_hdr);

    // Reduction: identical scheme to V0.
    b.switch_to(after);
    b.loc("v1_reduce");
    b.store_shared_i32(red_s_addr.into(), best_s.into());
    b.store_shared_i32(red_i_addr.into(), best_i.into());
    b.sync_threads();
    let t0 = b.icmp_eq(tid.into(), Operand::ImmI32(0));
    b.cond_br(t0.into(), red_start, done);

    b.switch_to(red_start);
    let bs = b.mov(Operand::ImmI32(0));
    let bi = b.mov(Operand::ImmI32(-1));
    let bj = b.mov(Operand::ImmI32(-1));
    let col = b.mov(Operand::ImmI32(0));
    b.br(red_hdr);

    b.switch_to(red_hdr);
    let red_more = b.icmp_lt(col.into(), n.into());
    b.cond_br(red_more.into(), red_body, red_done);

    b.switch_to(red_body);
    let rs_addr = b.index_addr(Operand::ImmI64(4 * t * 4), col.into(), 4);
    let ri_addr = b.index_addr(Operand::ImmI64(5 * t * 4), col.into(), 4);
    let s = b.load_shared_i32(rs_addr.into());
    let ii = b.load_shared_i32(ri_addr.into());
    let sgt = b.icmp(CmpPred::Gt, s.into(), bs.into());
    let s_eq = b.icmp_eq(s.into(), bs.into());
    let ilt = b.icmp_lt(ii.into(), bi.into());
    let tie = b.and(s_eq.into(), ilt.into());
    let better2 = b.or(sgt.into(), tie.into());
    b.select_to(bs, better2.into(), s.into(), bs.into());
    b.select_to(bi, better2.into(), ii.into(), bi.into());
    b.select_to(bj, better2.into(), col.into(), bj.into());
    b.ibin_to(col, gevo_ir::IntBinOp::Add, col.into(), Operand::ImmI32(1));
    b.br(red_hdr);

    b.switch_to(red_done);
    let out_idx = b.mul(bid.into(), Operand::ImmI32(4));
    let out0 = b.index_addr(Operand::Param(p_out), out_idx.into(), 4);
    b.store_global_i32(out0.into(), bs.into());
    let out1 = b.add_i64(out0.into(), Operand::ImmI64(4));
    b.store_global_i32(out1.into(), bi.into());
    let out2 = b.add_i64(out0.into(), Operand::ImmI64(8));
    b.store_global_i32(out2.into(), bj.into());
    b.br(done);

    b.switch_to(done);
    b.ret();

    (
        b.finish(),
        V1Sites {
            publish_sh_cond,
            publish_local_cond,
            use_left_cond,
            use_diag_cond,
            lane0_bool: lane0,
            active_bool: active,
            valid_bool: is_valid,
            ballot,
            activemask,
            recompute,
            dead_store,
            dead_load,
            dead_shfl,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1_kernels_verify() {
        for dir in [Dir::Forward, Dir::Reverse] {
            let (k, _) = build_v1(32, dir);
            assert!(gevo_ir::verify::verify(&k).is_ok(), "{dir:?}: {k}");
        }
    }

    #[test]
    fn v1_sites_resolve() {
        let (k, s) = build_v1(32, Dir::Forward);
        for term in [
            s.publish_sh_cond,
            s.publish_local_cond,
            s.use_left_cond,
            s.use_diag_cond,
        ] {
            assert!(k.terminator(term).is_some(), "site {term} is a terminator");
            assert!(matches!(
                k.terminator(term).unwrap().kind,
                gevo_ir::TermKind::CondBr { .. }
            ));
        }
        for inst in [
            s.ballot,
            s.activemask,
            s.recompute,
            s.dead_store,
            s.dead_load,
            s.dead_shfl,
        ] {
            assert!(
                k.locate(inst).is_some(),
                "site {inst} is a body instruction"
            );
        }
    }

    #[test]
    fn v1_is_larger_than_v0() {
        // Paper: V1 has ~1.6x the IR instructions of V0 across two kernels.
        let (v0, _) = crate::adept::v0::build_v0(32, 4);
        let (f, _) = build_v1(32, Dir::Forward);
        let (r, _) = build_v1(32, Dir::Reverse);
        assert!(f.inst_count() + r.inst_count() > v0.inst_count());
    }

    #[test]
    fn v1_uses_warp_intrinsics() {
        let (k, _) = build_v1(32, Dir::Forward);
        let has = |pred: fn(&gevo_ir::Op) -> bool| k.iter_insts().any(|(_, i)| pred(&i.op));
        assert!(has(|op| matches!(op, gevo_ir::Op::ShflUpSync)));
        assert!(has(|op| matches!(op, gevo_ir::Op::BallotSync)));
        assert!(has(|op| matches!(op, gevo_ir::Op::ActiveMask)));
    }
}
