//! Fixed-seed trajectory pins for the optimizing lowering pipeline: a
//! whole GA run under `O2` must reproduce the `O0` run's `SearchResult`
//! byte-for-byte (the process-wide knob may change wall-clock, never a
//! trajectory), checkpoints taken under either level must be
//! byte-identical, and a checkpoint written under one level must resume
//! correctly under the other.
//!
//! Everything lives in ONE test function: [`gevo_gpu::set_opt_level`]
//! is process-wide, so concurrent tests flipping it would race. This
//! integration binary is its own process — flipping the global here
//! cannot leak into any other test target.

use gevo_bench::{adept_on, scaled_table1_specs, simcov_on};
use gevo_engine::{GaConfig, Search, SearchSpec, StepStatus, Workload};
use gevo_gpu::{opt_level, set_opt_level, OptLevel};
use gevo_workloads::adept::Version;

/// The shared fixed-seed budget: small enough for CI, long enough to
/// exercise mutation chains, delta patches and cache reuse.
fn pinned_spec() -> SearchSpec {
    SearchSpec {
        ga: GaConfig {
            population: 8,
            generations: 6,
            seed: 7,
            threads: 1,
            ..GaConfig::scaled()
        },
        ..SearchSpec::default()
    }
}

/// Runs the full search, checkpointing after `ckpt_gen` generations.
/// Returns `(result_json, checkpoint_json, eval_stats)`.
fn run_with_checkpoint(
    w: &dyn Workload,
    spec: &SearchSpec,
    ckpt_gen: usize,
) -> (String, String, gevo_engine::EvalStats) {
    let mut search = Search::from_spec(w, spec.clone());
    let mut ckpt = None;
    while let StepStatus::Advanced { gen } = search.step() {
        if gen + 1 == ckpt_gen {
            ckpt = Some(search.checkpoint().to_json().to_string());
        }
    }
    let stats = search.eval_stats();
    let ckpt = ckpt.expect("checkpoint generation inside the budget");
    (search.into_result().to_json().to_string(), ckpt, stats)
}

/// Resumes from a checkpoint JSON and drives the rest of the run.
fn resume_and_finish(w: &dyn Workload, ckpt_json: &str) -> String {
    let value = serde_json::from_str(ckpt_json).expect("checkpoint is valid JSON");
    let state = gevo_engine::SearchState::from_json(&value).expect("checkpoint decodes");
    let mut search = Search::resume(w, &state);
    while matches!(search.step(), StepStatus::Advanced { .. }) {}
    search.into_result().to_json().to_string()
}

#[test]
fn o2_preserves_fixed_seed_trajectories_and_checkpoints() {
    // This integration binary is a fresh process: the library default
    // must be the O0 control arm, and the knob must round-trip.
    assert_eq!(opt_level(), OptLevel::O0, "library default is O0");
    set_opt_level(OptLevel::O2);
    assert_eq!(opt_level(), OptLevel::O2);
    set_opt_level(OptLevel::O0);
    assert_eq!(opt_level(), OptLevel::O0);

    let spec = pinned_spec();
    let p100 = &scaled_table1_specs()[0];

    for name in ["adept-v0", "simcov"] {
        // Workloads are built fresh per arm *after* the level is set:
        // construction may pre-compile, and each arm must compile
        // everything at its own level.
        let build = |v: Version| -> Box<dyn Workload> {
            match name {
                "adept-v0" => Box::new(adept_on(v, p100)),
                _ => Box::new(simcov_on(p100)),
            }
        };

        set_opt_level(OptLevel::O0);
        let w0 = build(Version::V0);
        let (r0, c0, s0) = run_with_checkpoint(w0.as_ref(), &spec, 3);

        set_opt_level(OptLevel::O2);
        let w2 = build(Version::V0);
        let (r2, c2, s2) = run_with_checkpoint(w2.as_ref(), &spec, 3);

        // The tentpole contract, end to end: identical trajectories,
        // identical fitness, identical history — byte for byte.
        assert_eq!(r0, r2, "{name}: O2 changed the fixed-seed search result");
        // Checkpoints never embed pass facts, so they are byte-stable
        // across levels (an O0 fleet and an O2 fleet share state).
        assert_eq!(c0, c2, "{name}: checkpoint bytes differ across levels");
        assert_eq!(s0.evals, s2.evals, "{name}: eval counts diverge");
        assert_eq!(s0.cache_hits, s2.cache_hits, "{name}: cache hits diverge");
        assert_eq!(
            s0.instructions, s2.instructions,
            "{name}: simulated instruction counts diverge"
        );

        // The passes actually fire on the paper's workloads: the O2 run
        // lowered real instructions and scalarized a nonzero fraction,
        // while the O0 control arm tagged nothing.
        assert!(s2.lowered_insts > 0, "{name}: O2 run lowered no code");
        assert!(
            s2.uniform_insts > 0,
            "{name}: O2 run found no warp-uniform instructions"
        );
        assert_eq!(s0.uniform_insts, 0, "{name}: O0 arm must tag nothing");
        assert_eq!(s0.folded_insts, 0, "{name}: O0 arm must fold nothing");
        assert!(
            s2.scalarized_fraction() > 0.0,
            "{name}: scalarized fraction empty at O2"
        );

        // Cross-level resume: a checkpoint written under O2 resumes
        // under O0 (and vice versa) onto the exact same final result.
        set_opt_level(OptLevel::O0);
        let w_cross = build(Version::V0);
        assert_eq!(
            resume_and_finish(w_cross.as_ref(), &c2),
            r0,
            "{name}: O2 checkpoint resumed under O0 diverges"
        );
        set_opt_level(OptLevel::O2);
        let w_back = build(Version::V0);
        assert_eq!(
            resume_and_finish(w_back.as_ref(), &c0),
            r2,
            "{name}: O0 checkpoint resumed under O2 diverges"
        );
    }

    // Leave the process at the library default for good hygiene.
    set_opt_level(OptLevel::O0);
}
