//! Runtime values held in simulated registers.

use gevo_ir::Ty;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dynamically typed scalar.
///
/// The executor checks types at every use: a mismatch means the verifier
/// was bypassed or has a hole, so it surfaces as a *typed execution error*
/// (invalid variant), never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 32-bit signed integer.
    I32(i32),
    /// 64-bit signed integer / byte address.
    I64(i64),
    /// 32-bit float.
    F32(f32),
    /// Predicate.
    Bool(bool),
}

impl Value {
    /// The deterministic "uninitialized register" sentinel for a type.
    ///
    /// Real GPUs hand back whatever the physical register last held;
    /// mutations that read registers before writing them must produce
    /// *deterministically wrong* answers for fitness evaluation to be
    /// reproducible, so the simulator initializes registers to these
    /// recognizable garbage patterns.
    #[must_use]
    pub fn sentinel(ty: Ty) -> Value {
        match ty {
            Ty::I32 => Value::I32(i32::from_le_bytes([0xDB; 4])),
            Ty::I64 => Value::I64(i64::from_le_bytes([0xDB; 8])),
            Ty::F32 => Value::F32(f32::from_le_bytes([0xDB; 4])),
            Ty::Bool => Value::Bool(false),
        }
    }

    /// This value's type.
    #[must_use]
    pub fn ty(&self) -> Ty {
        match self {
            Value::I32(_) => Ty::I32,
            Value::I64(_) => Ty::I64,
            Value::F32(_) => Ty::F32,
            Value::Bool(_) => Ty::Bool,
        }
    }

    /// Extracts an `i32`, if that is the type.
    #[must_use]
    pub fn as_i32(&self) -> Option<i32> {
        match self {
            Value::I32(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts an `i64`, if that is the type.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts an `f32`, if that is the type.
    #[must_use]
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Value::F32(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a `bool`, if that is the type.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}l"),
            Value::F32(v) => write!(f, "{v}f"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I32(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F32(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_types_match() {
        for ty in [Ty::I32, Ty::I64, Ty::F32, Ty::Bool] {
            assert_eq!(Value::sentinel(ty).ty(), ty);
        }
    }

    #[test]
    fn sentinels_are_recognizable_garbage() {
        assert_eq!(
            Value::sentinel(Ty::I32).as_i32(),
            Some(i32::from_le_bytes([0xDB; 4]))
        );
        assert_ne!(Value::sentinel(Ty::I32).as_i32(), Some(0));
    }

    #[test]
    fn accessors_reject_wrong_type() {
        let v = Value::I32(7);
        assert_eq!(v.as_i32(), Some(7));
        assert_eq!(v.as_i64(), None);
        assert_eq!(v.as_f32(), None);
        assert_eq!(v.as_bool(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i32), Value::I32(5));
        assert_eq!(Value::from(5i64), Value::I64(5));
        assert_eq!(Value::from(2.5f32), Value::F32(2.5));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
