//! `gevo-serve` — a minimal durable job server over the search engine.
//!
//! Accepts line-delimited JSON jobs on **stdin** or over a plain
//! `std::net::TcpListener` (`--listen ADDR`; no web framework), runs
//! each search on its own supervised worker thread, streams engine
//! events back as they happen, and checkpoints every N generations so
//! a `SIGKILL` at any moment loses at most N generations of work: on
//! restart the server rescans its state directory and resumes every
//! unfinished job from its last checkpoint. DESIGN.md §3.6 documents
//! the protocol, §3.9 the supervision/recovery contract.
//!
//! ```text
//! gevo-serve --state-dir DIR [--listen ADDR] [--exit-when-idle]
//! ```
//!
//! Operations (one JSON object per line):
//!
//! ```text
//! {"op":"submit","id":"j1","workload":"adept-v0","pop":8,"gens":6,"seed":3,
//!  "deadline_s":600}
//! {"op":"status"}
//! {"op":"shutdown"}
//! ```
//!
//! Malformed submissions are rejected with one `error` event **per bad
//! field** — a present-but-wrong-type `pop`/`gens`/`seed`/... never
//! silently coerces to a default (absent fields still default).
//!
//! Events (one JSON object per line, to the submitting stream):
//!
//! ```text
//! {"event":"accepted","id":"j1","recovered":false}
//! {"event":"generation","id":"j1","gen":0,"best_fitness":..,"best_speedup":..}
//! {"event":"migration","id":"j1","gen":..,"from":0,"to":1}
//! {"event":"rollback","id":"j1","message":"checkpoint .. rolled back .."}
//! {"event":"failed","id":"j1","attempt":1,"error":"panic: .."}
//! {"event":"suspended","id":"j1","gen":4}
//! {"event":"done","id":"j1","speedup":..,"result":"<path>.done.json",
//!  "attempts":1,"evals":..,"step_limit_kills":..,"faults":{..}}
//! {"event":"error","id":"j1","message":".."}
//! {"event":"status","jobs":[{"id":"j1","state":"running","attempts":1}, ..]}
//! ```
//!
//! Supervision: each job runs under a per-attempt `catch_unwind` with
//! an optional wall-clock deadline (`deadline_s` on the submit, else
//! `GEVO_JOB_DEADLINE`). A panicked or deadline-blown attempt emits a
//! `failed` event and is retried with exponential backoff
//! (`GEVO_JOB_RETRIES` / `GEVO_JOB_BACKOFF_MS`, see
//! `gevo_bench::supervise`) — and because the attempt resumes from the
//! job's last checkpoint, a retry repeats at most one checkpoint
//! interval, never the whole search. The `shutdown` op checkpoints
//! every in-flight job (`suspended` event) before the server exits, so
//! the next start resumes them rather than re-running from
//! generation 0.
//!
//! Durability: `<id>.job.json` (the resolved job, written atomically on
//! accept), `<id>.ckpt.json` (CRC-sealed checkpoint with `.ckpt.json.1`
//! rotation, cadence `GEVO_CHECKPOINT_EVERY`, default 5),
//! `<id>.done.json` (final [`gevo_engine::SearchResult`]). All writes
//! are atomic (temp + rename), so a kill can truncate nothing; a
//! corrupted checkpoint rolls back to its `.1` snapshot (`rollback`
//! event) instead of failing the job.

use gevo_bench::checkpoint::{load_state_with_rollback, write_atomic, write_checkpoint};
use gevo_bench::supervise::{job_deadline, RetryPolicy};
use gevo_bench::{chaos, env_usize, quarantine_knob, workload_by_name};
use gevo_engine::{
    GaConfig, GenerationRecord, MigrationEvent, Search, SearchObserver, SearchSpec, SearchState,
    StepStatus,
};
use serde_json::Value;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

/// Where a job's events go: the stdout printer thread, or the TCP
/// connection that submitted it.
#[derive(Clone)]
enum Sink {
    Stdout(mpsc::Sender<String>),
    Socket(Arc<Mutex<TcpStream>>),
}

impl Sink {
    fn emit(&self, line: &str) {
        match self {
            Sink::Stdout(tx) => {
                let _ = tx.send(line.to_string());
            }
            Sink::Socket(stream) => {
                if let Ok(mut s) = stream.lock() {
                    let _ = writeln!(s, "{line}");
                    let _ = s.flush();
                }
            }
        }
    }
}

/// One row of the job table.
#[derive(Clone, Copy)]
struct JobInfo {
    state: &'static str,
    attempts: usize,
}

/// Shared server state: job table + idle signaling + shutdown latch.
struct Manager {
    dir: PathBuf,
    every: usize,
    jobs: Mutex<BTreeMap<String, JobInfo>>,
    idle: Condvar,
    /// Set by the `shutdown` op: workers checkpoint and suspend at
    /// their next step boundary instead of running to completion.
    shutting_down: AtomicBool,
}

impl Manager {
    fn set_state(&self, id: &str, state: &'static str) {
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        let info = jobs
            .entry(id.to_string())
            .or_insert(JobInfo { state, attempts: 0 });
        info.state = state;
        self.idle.notify_all();
    }

    fn set_attempts(&self, id: &str, attempts: usize) {
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        if let Some(info) = jobs.get_mut(id) {
            info.attempts = attempts;
        }
    }

    fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
    }

    fn shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    fn wait_idle(&self) {
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        while jobs
            .values()
            .any(|j| j.state == "queued" || j.state == "running")
        {
            jobs = self.idle.wait(jobs).expect("job table poisoned");
        }
    }

    fn status_line(&self) -> String {
        let jobs = self.jobs.lock().expect("job table poisoned");
        let rows: Vec<Value> = jobs
            .iter()
            .map(|(id, info)| {
                let mut row = serde_json::Map::new();
                row.insert("id", id.clone());
                row.insert("state", info.state);
                row.insert("attempts", info.attempts as u64);
                Value::Object(row)
            })
            .collect();
        let mut obj = serde_json::Map::new();
        obj.insert("event", "status");
        obj.insert("jobs", Value::Array(rows));
        Value::Object(obj).to_string()
    }
}

/// One accepted job: id + workload registry name + fully resolved spec
/// + optional per-job deadline.
#[derive(Clone)]
struct Job {
    id: String,
    workload: String,
    spec: SearchSpec,
    deadline_s: Option<u64>,
}

impl Job {
    fn to_json(&self) -> Value {
        let mut obj = serde_json::Map::new();
        obj.insert("id", self.id.clone());
        obj.insert("workload", self.workload.clone());
        obj.insert("spec", self.spec.to_json());
        if let Some(s) = self.deadline_s {
            obj.insert("deadline_s", s);
        }
        Value::Object(obj)
    }

    fn from_json(v: &Value) -> Result<Job, String> {
        let id = v
            .get("id")
            .and_then(Value::as_str)
            .ok_or("job: missing id")?;
        let workload = v
            .get("workload")
            .and_then(Value::as_str)
            .ok_or("job: missing workload")?;
        let spec = SearchSpec::from_json(v.get("spec").ok_or("job: missing spec")?)?;
        Ok(Job {
            id: id.to_string(),
            workload: workload.to_string(),
            spec,
            deadline_s: v.get("deadline_s").and_then(Value::as_u64),
        })
    }
}

fn event(kind: &str, id: &str) -> serde_json::Map {
    let mut obj = serde_json::Map::new();
    obj.insert("event", kind);
    obj.insert("id", id);
    obj
}

/// Streams engine callbacks out as serve events.
struct ServeObserver {
    id: String,
    sink: Sink,
}

impl SearchObserver for ServeObserver {
    fn on_generation(&mut self, record: &GenerationRecord) {
        let mut obj = event("generation", &self.id);
        obj.insert("gen", record.gen);
        obj.insert("best_fitness", record.best_fitness);
        obj.insert("best_speedup", record.best_speedup);
        self.sink.emit(&Value::Object(obj).to_string());
    }

    fn on_migration(&mut self, ev: &MigrationEvent) {
        let mut obj = event("migration", &self.id);
        obj.insert("gen", ev.gen);
        obj.insert("from", ev.from);
        obj.insert("to", ev.to);
        self.sink.emit(&Value::Object(obj).to_string());
    }
}

fn job_path(dir: &Path, id: &str, kind: &str) -> PathBuf {
    dir.join(format!("{id}.{kind}.json"))
}

/// How one supervised attempt ended.
enum Attempt {
    /// Result persisted, `done` event emitted.
    Done,
    /// Shutdown checkpointed the job mid-run; the next server start
    /// resumes it.
    Suspended,
    /// Recoverable failure (deadline blown); retry from checkpoint.
    Failed(String),
    /// Unrecoverable (unknown workload, both checkpoint snapshots
    /// corrupt): retrying cannot help.
    Fatal(String),
}

/// One attempt at a job: resume from its checkpoint (rolling back to
/// the previous snapshot if the latest is corrupt), stream events,
/// checkpoint on cadence, honor the deadline and the shutdown latch,
/// persist the final result.
fn run_job_once(mgr: &Arc<Manager>, job: &Job, sink: &Sink, attempt: usize) -> Attempt {
    let Some(w) = workload_by_name(&job.workload) else {
        return Attempt::Fatal(format!("unknown workload {:?}", job.workload));
    };
    let w = chaos::wrap(w);
    let ckpt = job_path(&mgr.dir, &job.id, "ckpt");
    let state: Option<SearchState> = if ckpt.exists() {
        match load_state_with_rollback(&ckpt) {
            Ok((s, note)) => {
                if let Some(note) = note {
                    let mut obj = event("rollback", &job.id);
                    obj.insert("message", note);
                    sink.emit(&Value::Object(obj).to_string());
                }
                Some(s)
            }
            Err(e) => return Attempt::Fatal(e),
        }
    } else {
        None
    };
    let deadline = job_deadline(job.deadline_s);
    let started = Instant::now();
    let mut obs = ServeObserver {
        id: job.id.clone(),
        sink: sink.clone(),
    };
    let mut search = match &state {
        Some(s) => Search::resume(w.as_ref(), s),
        None => Search::from_spec(w.as_ref(), job.spec.clone()),
    }
    .observer(&mut obs);
    while let StepStatus::Advanced { gen } = search.step() {
        if (gen + 1) % mgr.every == 0 {
            write_checkpoint(&ckpt, &search.checkpoint());
        }
        // Chaos worker panics fire at the step boundary, after any due
        // checkpoint — caught by the supervisor, retried from that
        // checkpoint (see `gevo_bench::chaos`).
        chaos::maybe_worker_panic(search.eval_stats().evals);
        if mgr.shutting_down() {
            write_checkpoint(&ckpt, &search.checkpoint());
            let mut obj = event("suspended", &job.id);
            obj.insert("gen", gen + 1);
            sink.emit(&Value::Object(obj).to_string());
            return Attempt::Suspended;
        }
        if let Some(limit) = deadline {
            if started.elapsed() > limit {
                write_checkpoint(&ckpt, &search.checkpoint());
                return Attempt::Failed(format!(
                    "deadline {}s exceeded at generation {}",
                    limit.as_secs(),
                    gen + 1
                ));
            }
        }
    }
    let stats = search.eval_stats();
    // Captured before finalization: the report lives on the session,
    // never in the result (observability stays outside the byte-identity
    // contract `done` files are compared under).
    let adapt = search.adapt_report();
    let result = search.into_result();
    let done = job_path(&mgr.dir, &job.id, "done");
    write_atomic(&done, &result.to_json().to_string());
    let mut obj = event("done", &job.id);
    obj.insert("speedup", result.speedup);
    obj.insert("result", done.display().to_string());
    obj.insert("attempts", attempt as u64);
    obj.insert("evals", stats.evals as u64);
    obj.insert("step_limit_kills", stats.faults.step_limit as u64);
    obj.insert("faults", stats.faults.to_json());
    if let Some(report) = adapt {
        obj.insert("adapt", report.to_json());
    }
    sink.emit(&Value::Object(obj).to_string());
    Attempt::Done
}

/// The supervisor: runs attempts under `catch_unwind`, emits `failed`
/// events, and retries from the last checkpoint with exponential
/// backoff until the policy is exhausted.
fn run_job(mgr: &Arc<Manager>, job: &Job, sink: &Sink) {
    let policy = RetryPolicy::from_env();
    let mut attempt = 0;
    loop {
        attempt += 1;
        mgr.set_state(&job.id, "running");
        mgr.set_attempts(&job.id, attempt);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job_once(mgr, job, sink, attempt)
        }));
        let error = match outcome {
            Ok(Attempt::Done) => {
                mgr.set_state(&job.id, "done");
                return;
            }
            Ok(Attempt::Suspended) => {
                mgr.set_state(&job.id, "suspended");
                return;
            }
            Ok(Attempt::Fatal(msg)) => {
                let mut obj = event("error", &job.id);
                obj.insert("message", msg);
                sink.emit(&Value::Object(obj).to_string());
                mgr.set_state(&job.id, "error");
                return;
            }
            Ok(Attempt::Failed(msg)) => msg,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&'static str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                format!("panic: {msg}")
            }
        };
        let mut obj = event("failed", &job.id);
        obj.insert("attempt", attempt as u64);
        obj.insert("error", error.clone());
        sink.emit(&Value::Object(obj).to_string());
        if attempt > policy.retries {
            let mut obj = event("error", &job.id);
            obj.insert(
                "message",
                format!("giving up after {attempt} attempts: {error}"),
            );
            sink.emit(&Value::Object(obj).to_string());
            mgr.set_state(&job.id, "error");
            return;
        }
        std::thread::sleep(policy.backoff(attempt));
    }
}

/// Accepts a job (persist + queue + spawn worker). `recovered` marks
/// jobs re-queued by the startup scan.
fn accept_job(mgr: &Arc<Manager>, job: Job, sink: &Sink, recovered: bool) {
    if job_path(&mgr.dir, &job.id, "done").exists() {
        // Idempotent: the job already completed in a previous life.
        let mut obj = event("done", &job.id);
        obj.insert("speedup", Value::Null);
        obj.insert(
            "result",
            job_path(&mgr.dir, &job.id, "done").display().to_string(),
        );
        sink.emit(&Value::Object(obj).to_string());
        mgr.set_state(&job.id, "done");
        return;
    }
    if !recovered {
        write_atomic(
            &job_path(&mgr.dir, &job.id, "job"),
            &job.to_json().to_string(),
        );
    }
    mgr.set_state(&job.id, "queued");
    let mut obj = event("accepted", &job.id);
    obj.insert("recovered", recovered);
    sink.emit(&Value::Object(obj).to_string());
    let mgr = Arc::clone(mgr);
    let sink = sink.clone();
    std::thread::spawn(move || run_job(&mgr, &job, &sink));
}

/// Builds the resolved job from a submit op: either an explicit
/// `"spec"` object, or the shorthand pop/gens/seed/islands/migration/
/// deadline_s fields over scaled defaults (threads pinned to 1 —
/// determinism before latency for durable jobs).
///
/// Absent shorthand fields default; **present-but-malformed fields are
/// errors**, one per field, so a typo'd `"pop":"32"` is rejected
/// loudly instead of silently running at the default budget.
fn job_from_submit(v: &Value) -> Result<Job, Vec<String>> {
    let mut errors: Vec<String> = Vec::new();
    let mut field_u64 = |name: &str, default: u64| -> u64 {
        match v.get(name) {
            None | Some(Value::Null) => default,
            Some(val) => val.as_u64().unwrap_or_else(|| {
                errors.push(format!(
                    "submit: field {name:?} must be a non-negative integer, got {val}"
                ));
                default
            }),
        }
    };
    let pop = field_u64("pop", 8);
    let gens = field_u64("gens", 6);
    let seed = field_u64("seed", 1);
    let islands = field_u64("islands", 1).max(1);
    // u64::MAX marks "absent": keep the spec's own default interval.
    let migration = field_u64("migration", u64::MAX);
    let deadline_s = match v.get("deadline_s") {
        None | Some(Value::Null) => None,
        Some(val) => {
            let parsed = val.as_u64();
            if parsed.is_none() {
                errors.push(format!(
                    "submit: field \"deadline_s\" must be a non-negative integer, got {val}"
                ));
            }
            parsed
        }
    };
    let id = match v.get("id").and_then(Value::as_str) {
        Some(id)
            if !id.is_empty()
                && id
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_') =>
        {
            id.to_string()
        }
        Some(id) => {
            errors.push(format!(
                "submit: id {id:?} must be non-empty [A-Za-z0-9_-] (it names state files)"
            ));
            String::new()
        }
        None => {
            errors.push("submit: missing id".to_string());
            String::new()
        }
    };
    let workload = match v.get("workload").and_then(Value::as_str) {
        Some(w) => w.to_string(),
        None => {
            errors.push("submit: missing workload".to_string());
            String::new()
        }
    };
    let spec = if let Some(s) = v.get("spec") {
        match SearchSpec::from_json(s) {
            Ok(spec) => spec,
            Err(e) => {
                errors.push(format!("submit: bad spec: {e}"));
                SearchSpec::default()
            }
        }
    } else {
        let clamp = |n: u64| usize::try_from(n).unwrap_or(usize::MAX);
        let mut spec = SearchSpec {
            ga: GaConfig {
                population: clamp(pop),
                generations: clamp(gens),
                seed,
                threads: 1,
                ..GaConfig::scaled()
            },
            islands: clamp(islands),
            ..SearchSpec::default()
        };
        if migration != u64::MAX {
            spec.migration_interval = clamp(migration);
        }
        spec
    };
    if errors.is_empty() {
        Ok(Job {
            id,
            workload,
            spec,
            deadline_s,
        })
    } else {
        Err(errors)
    }
}

/// Handles one op line; returns `true` when the server should shut
/// down.
fn handle_line(mgr: &Arc<Manager>, line: &str, sink: &Sink) -> bool {
    let line = line.trim();
    if line.is_empty() {
        return false;
    }
    let v = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => {
            let mut obj = event("error", "");
            obj.insert("message", format!("bad JSON: {e}"));
            sink.emit(&Value::Object(obj).to_string());
            return false;
        }
    };
    match v.get("op").and_then(Value::as_str).unwrap_or("") {
        "submit" => match job_from_submit(&v) {
            Ok(job) => accept_job(mgr, job, sink, false),
            Err(messages) => {
                let id = v.get("id").and_then(Value::as_str).unwrap_or("");
                for msg in messages {
                    let mut obj = event("error", id);
                    obj.insert("message", msg);
                    sink.emit(&Value::Object(obj).to_string());
                }
            }
        },
        "status" => sink.emit(&mgr.status_line()),
        "shutdown" => {
            // Graceful: every in-flight job checkpoints and suspends at
            // its next step boundary; the main/TCP path then drains and
            // exits. The next start resumes the suspended jobs.
            mgr.begin_shutdown();
            return true;
        }
        _ => {
            let mut obj = event("error", "");
            obj.insert("message", format!("unknown op in {line:?}"));
            sink.emit(&Value::Object(obj).to_string());
        }
    }
    false
}

/// Startup recovery: re-queue every `<id>.job.json` without a matching
/// `<id>.done.json`, in lexicographic id order.
fn recover(mgr: &Arc<Manager>, sink: &Sink) {
    let Ok(entries) = std::fs::read_dir(&mgr.dir) else {
        return;
    };
    let mut job_files: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().ends_with(".job.json"))
        })
        .collect();
    job_files.sort();
    for path in job_files {
        let job = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| serde_json::from_str(&text).map_err(|e| e.to_string()))
            .and_then(|v| Job::from_json(&v));
        match job {
            Ok(job) => accept_job(mgr, job, sink, true),
            Err(e) => {
                let mut obj = event("error", "");
                obj.insert(
                    "message",
                    format!("unreadable job file {}: {e}", path.display()),
                );
                sink.emit(&Value::Object(obj).to_string());
            }
        }
    }
}

fn arg_value(flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let Some(dir) = arg_value("--state-dir").map(PathBuf::from) else {
        eprintln!("usage: gevo-serve --state-dir DIR [--listen ADDR] [--exit-when-idle]");
        std::process::exit(2);
    };
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| {
        eprintln!("cannot create state dir {}: {e}", dir.display());
        std::process::exit(2);
    });
    let _ = quarantine_knob();
    let exit_when_idle = std::env::args().any(|a| a == "--exit-when-idle");
    let mgr = Arc::new(Manager {
        dir,
        every: env_usize("GEVO_CHECKPOINT_EVERY", 5).max(1),
        jobs: Mutex::new(BTreeMap::new()),
        idle: Condvar::new(),
        shutting_down: AtomicBool::new(false),
    });

    // Printer thread owns stdout; every stdin-submitted or recovered
    // job's events flow through it, one line each.
    let (tx, rx) = mpsc::channel::<String>();
    let printer = std::thread::spawn(move || {
        let stdout = std::io::stdout();
        for line in rx {
            let mut out = stdout.lock();
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        }
    });
    let stdout_sink = Sink::Stdout(tx);

    recover(&mgr, &stdout_sink);

    if let Some(addr) = arg_value("--listen") {
        let listener = std::net::TcpListener::bind(&addr).unwrap_or_else(|e| {
            eprintln!("cannot listen on {addr}: {e}");
            std::process::exit(2);
        });
        let mgr = Arc::clone(&mgr);
        std::thread::spawn(move || {
            for stream in listener.incoming().filter_map(Result::ok) {
                let mgr = Arc::clone(&mgr);
                std::thread::spawn(move || {
                    let reader =
                        std::io::BufReader::new(stream.try_clone().expect("tcp stream clones"));
                    let sink = Sink::Socket(Arc::new(Mutex::new(stream)));
                    for line in reader.lines().map_while(Result::ok) {
                        if handle_line(&mgr, &line, &sink) {
                            // Shutdown over TCP: wait for every worker
                            // to suspend or finish, then exit.
                            mgr.wait_idle();
                            std::process::exit(0);
                        }
                    }
                });
            }
        });
    }

    let stdin = std::io::stdin();
    for line in stdin.lock().lines().map_while(Result::ok) {
        if handle_line(&mgr, &line, &stdout_sink) {
            break; // shutdown op: stop accepting, drain below.
        }
    }

    if exit_when_idle {
        mgr.wait_idle();
        drop(stdout_sink);
        let _ = printer.join();
        std::process::exit(0);
    }
    // Without --exit-when-idle, stdin EOF (or the shutdown op) still
    // drains in-flight work — to completion normally, to a suspended
    // checkpoint under shutdown — before exiting (a TCP listener, if
    // any, dies with the process).
    mgr.wait_idle();
    drop(stdout_sink);
    let _ = printer.join();
}
