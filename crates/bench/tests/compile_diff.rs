//! Differential property test for the compile-once pipeline: on randomly
//! generated kernels, [`Gpu::launch`] (verify + compile + run per call)
//! and [`Gpu::launch_compiled`] (compile once, run many) must produce
//! identical [`LaunchStats`] and identical final device memory, on every
//! spec of the paper's Table I — the guarantee that lets the evaluation
//! stack switch to compiled launches without perturbing a single GA
//! trajectory.

use gevo_bench::scaled_table1_specs;
use gevo_gpu::{Gpu, KernelArg, LaunchConfig, LaunchStats};
use gevo_ir::{rng, IntBinOp, Kernel, KernelBuilder, Operand, Special};
use proptest::prelude::*;

/// Deterministic pseudo-random kernel generator driven by
/// [`gevo_ir::rng::mix64`]: straight-line integer arithmetic over a
/// growing register pool, warp intrinsics (shuffle + ballot), shared
/// scratch traffic, a barrier, and a data-dependent diamond, closed by a
/// per-thread global store. Everything the interpreter dispatches on,
/// in one kernel family.
fn random_kernel(seed: u64, n_ops: u64) -> Kernel {
    let mut ctr = 0u64;
    let mut draw = |bound: u64| -> u64 {
        ctr += 1;
        rng::mix64(seed, ctr) % bound.max(1)
    };

    let mut b = KernelBuilder::new("rand");
    b.shared_bytes(64 * 4);
    let out = b.param_ptr("out", gevo_ir::AddrSpace::Global);
    let tid = b.special_i32(Special::ThreadId);
    let lane = b.special_i32(Special::LaneId);

    // Register pool the generator samples operands from.
    let mut pool = vec![tid, lane];
    const OPS: [IntBinOp; 10] = [
        IntBinOp::Add,
        IntBinOp::Sub,
        IntBinOp::Mul,
        IntBinOp::Min,
        IntBinOp::Max,
        IntBinOp::And,
        IntBinOp::Or,
        IntBinOp::Xor,
        IntBinOp::Div,
        IntBinOp::Rem,
    ];
    for _ in 0..n_ops {
        let op = OPS[draw(OPS.len() as u64) as usize];
        let a = pool[draw(pool.len() as u64) as usize];
        let rhs: Operand = if draw(3) == 0 {
            #[allow(clippy::cast_possible_wrap, clippy::cast_possible_truncation)]
            Operand::ImmI32(draw(17) as i32 - 8)
        } else {
            pool[draw(pool.len() as u64) as usize].into()
        };
        let r = b.ibin(op, a.into(), rhs);
        pool.push(r);
    }
    let acc = pool[pool.len() - 1];

    // Shared scratch: publish, barrier, read a neighbour's slot.
    let my_slot = b.index_addr(Operand::ImmI64(0), tid.into(), 4);
    b.store_shared_i32(my_slot.into(), acc.into());
    b.sync_threads();
    let nb = b.ibin(IntBinOp::Xor, tid.into(), Operand::ImmI32(1));
    let nb_clamped = b.min(nb.into(), Operand::ImmI32(63));
    let nb_slot = b.index_addr(Operand::ImmI64(0), nb_clamped.into(), 4);
    let nb_val = b.load_shared_i32(nb_slot.into());

    // Warp intrinsics.
    let sel = b.and(lane.into(), Operand::ImmI32(3));
    let shuffled = b.shfl(acc.into(), sel.into());
    let odd = b.and(tid.into(), Operand::ImmI32(1));
    let is_odd = b.icmp_eq(odd.into(), Operand::ImmI32(1));
    let votes = b.ballot(is_odd.into());

    // Data-dependent diamond (divergent for mixed predicates).
    #[allow(clippy::cast_possible_wrap, clippy::cast_possible_truncation)]
    let pivot = Operand::ImmI32(draw(8) as i32);
    let cond = b.icmp_lt(acc.into(), pivot);
    let then_b = b.new_block("then");
    let else_b = b.new_block("else");
    let join_b = b.new_block("join");
    let result = b.fresh_reg(gevo_ir::Ty::I32);
    b.cond_br(cond.into(), then_b, else_b);
    b.switch_to(then_b);
    let t = b.add(nb_val.into(), shuffled.into());
    b.mov_to(result, t.into());
    b.br(join_b);
    b.switch_to(else_b);
    let e = b.sub(votes.into(), nb_val.into());
    b.mov_to(result, e.into());
    b.br(join_b);
    b.switch_to(join_b);
    let gtid = b.global_thread_id();
    let addr = b.index_addr(Operand::Param(out), gtid.into(), 4);
    b.store_global_i32(addr.into(), result.into());
    b.ret();
    b.finish()
}

/// One launch of `kernel` on a fresh device via `Gpu::launch`, plus the
/// second (warm-L2) launch — the compiled path must match both.
fn run_source(
    spec: &gevo_gpu::GpuSpec,
    kernel: &Kernel,
    cfg: LaunchConfig,
    threads: u32,
) -> (Vec<LaunchStats>, Vec<i32>) {
    let mut gpu = Gpu::new(spec.clone());
    let out = gpu.mem_mut().alloc(u64::from(threads) * 4).expect("alloc");
    let args = [KernelArg::from(out)];
    let s1 = gpu.launch(kernel, cfg, &args).expect("source launch");
    let s2 = gpu.launch(kernel, cfg, &args).expect("source relaunch");
    (vec![s1, s2], gpu.mem().read_i32s(out, 0, threads as usize))
}

fn run_compiled(
    spec: &gevo_gpu::GpuSpec,
    kernel: &Kernel,
    cfg: LaunchConfig,
    threads: u32,
) -> (Vec<LaunchStats>, Vec<i32>) {
    let mut gpu = Gpu::new(spec.clone());
    let compiled = gpu.compile(kernel).expect("compiles");
    let out = gpu.mem_mut().alloc(u64::from(threads) * 4).expect("alloc");
    let args = [KernelArg::from(out)];
    let s1 = gpu
        .launch_compiled(&compiled, cfg, &args)
        .expect("compiled launch");
    let s2 = gpu
        .launch_compiled(&compiled, cfg, &args)
        .expect("compiled relaunch");
    (vec![s1, s2], gpu.mem().read_i32s(out, 0, threads as usize))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24).with_rng_seed(0xC0DE_CAFE))]

    /// `launch` and `launch_compiled` are indistinguishable: identical
    /// stats (cold and warm L2) and identical final device memory, for
    /// random kernels on all three Table-I specs.
    #[test]
    fn launch_and_launch_compiled_are_bit_identical(
        seed in 0u64..u64::MAX,
        n_ops in 0u64..32,
        grid in 1u32..3,
        block in 1u32..17,
    ) {
        let kernel = random_kernel(seed, n_ops);
        prop_assert!(gevo_ir::verify::verify(&kernel).is_ok());
        let cfg = LaunchConfig::new(grid, block);
        let threads = grid * block;
        for spec in scaled_table1_specs() {
            let (src_stats, src_mem) = run_source(&spec, &kernel, cfg, threads);
            let (ck_stats, ck_mem) = run_compiled(&spec, &kernel, cfg, threads);
            prop_assert!(src_stats == ck_stats, "stats diverge on {}", spec.name);
            prop_assert!(src_mem == ck_mem, "memory diverges on {}", spec.name);
        }
    }

    /// The scheduler-seed permutation path is also identical.
    #[test]
    fn compiled_path_matches_under_permuted_schedulers(
        seed in 0u64..u64::MAX,
        sched in 1u64..1000,
    ) {
        let kernel = random_kernel(seed, 12);
        let cfg = LaunchConfig::new(2, 16).with_seed(sched);
        let spec = &scaled_table1_specs()[0];
        let (src_stats, src_mem) = run_source(spec, &kernel, cfg, 32);
        let (ck_stats, ck_mem) = run_compiled(spec, &kernel, cfg, 32);
        prop_assert_eq!(src_stats, ck_stats);
        prop_assert_eq!(src_mem, ck_mem);
    }
}
