//! No-op derive macros standing in for `serde_derive` in this offline
//! workspace.
//!
//! The sibling `vendor/serde` crate provides blanket implementations of
//! its marker `Serialize`/`Deserialize` traits, so these derives do not
//! need to generate any code — they only need to *exist* so that
//! `#[derive(Serialize, Deserialize)]` (and `#[serde(...)]` helper
//! attributes) parse exactly as they would against the real crates.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
