//! Offline stand-in for the subset of `rand` 0.8 that this workspace
//! uses, vendored because the build environment has no crates.io access.
//!
//! Provided surface (matching the real crate's names and signatures
//! closely enough that swapping the real `rand` back in is a
//! manifest-only change):
//!
//! * [`RngCore`] — `next_u32` / `next_u64` / `fill_bytes`,
//! * [`Rng`] — `gen_range` (integer and float, half-open and inclusive
//!   ranges), `gen_bool`, blanket-implemented for every [`RngCore`],
//! * [`SeedableRng`] — `from_seed` + the SplitMix64-based
//!   `seed_from_u64` default,
//! * [`seq::SliceRandom`] — `choose` / `choose_mut` / `shuffle`.
//!
//! Distributions are plain modulo / 53-bit-mantissa constructions: a
//! negligible bias is acceptable here because every consumer draws from
//! seeded generators for *search*, not cryptography or exact statistics.

use std::ops::{Range, RangeInclusive};

/// Core of every random number generator: raw word output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A range that can produce a single uniformly distributed sample.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A draw in `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    (rng.next_u64() >> 11) as f64 * SCALE
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty float range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty float range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array in every provided generator).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// exactly like `rand` 0.8 does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices: the `choose`/`shuffle` family.
    pub trait SliceRandom {
        /// Element type of the underlying slice.
        type Item;

        /// Uniformly random shared reference, `None` on empty slices.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Uniformly random mutable reference, `None` on empty slices.
        fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }

        fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() % self.len() as u64) as usize;
                self.get_mut(idx)
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..7);
            assert!(v < 7);
            let w: i32 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&w));
            let f: f64 = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Counter(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }
}
