//! §VI-D ablation: SIMCoV boundary-check removal and grid padding
//! (Fig. 10).
//!
//! The paper: removal alone gives ~20% but segfaults on the 2500×2500
//! held-out grid; manually padding the borders with zeros keeps 14%
//! safely.

use gevo_bench::{scaled_table1_specs, simcov_on, speedup_of};
use gevo_engine::{Evaluator, Patch};
use gevo_workloads::simcov::{SimcovConfig, SimcovWorkload};

fn main() {
    let p100 = &scaled_table1_specs()[0];
    let w = simcov_on(p100);
    let ev = Evaluator::new(&w);
    println!("§VI-D / Fig. 10: boundary checks in SIMCoV's diffusion kernels");
    println!();

    let boundary = Patch::from_edits(w.boundary_edits());
    let s_remove = ev.speedup(&boundary).expect("passes the small grid");
    println!("small fitness grid ({0}x{0}):", w.config().g);
    println!(
        "  boundary-check removal: {:+.1}% (paper: ~20%)",
        (s_remove - 1.0) * 100.0
    );
    println!(
        "  curated patch total:    {:+.1}% (paper: ~29%)",
        (speedup_of(&w, &w.curated_patch()) - 1.0) * 100.0
    );
    println!();

    // Fig. 10(b): the held-out grid places the field at the end of device
    // memory; walking off the grid faults.
    println!("held-out grid (64x64, field flush against the arena end):");
    match w.validate_heldout(&boundary, 64, 3) {
        Err(e) => println!("  boundary-removed variant: FAILS — {e}"),
        Ok(()) => println!("  boundary-removed variant: unexpectedly passed?!"),
    }
    match w.validate_heldout(&Patch::empty(), 64, 3) {
        Ok(()) => println!("  pristine program:         passes"),
        Err(e) => println!("  pristine program:         FAILS — {e}"),
    }
    println!();

    // Fig. 10(c): the manual fix — zero padding, no checks.
    let padded = SimcovWorkload::new(SimcovConfig::scaled().padded());
    let f_checked = ev.baseline();
    let ev_p = Evaluator::new(&padded);
    let f_padded = ev_p.baseline();
    println!("padded layout (Fig. 10(c), the developer's safe fix):");
    println!(
        "  padded vs checked baseline: {:+.1}% (paper: ~14%)",
        (f_checked / f_padded - 1.0) * 100.0
    );
    match padded.validate_heldout(&Patch::empty(), 64, 3) {
        Ok(()) => println!("  held-out grid:              passes (no checks needed)"),
        Err(e) => println!("  held-out grid:              FAILS — {e}"),
    }
    println!();
    println!("Shape to check: removal is the biggest single SIMCoV win but only");
    println!("safe on grids with allocation slack; padding keeps most of the win");
    println!("at negligible memory cost.");
}
