//! Quarantine of panic-provoking variants.
//!
//! The paper's methodology scores crashing/hanging mutants as
//! worst-fitness individuals and moves on — the search must never die
//! because one genome found a simulator or compiler bug. [`crate::Evaluator`]
//! therefore runs every evaluation behind `catch_unwind`; when an
//! evaluation panics, the offending variant is serialized here as a
//! [`QuarantineRecord`] before the search continues, so the exact
//! (workload, patch, seed) triple that provoked the panic can be
//! replayed deterministically in isolation (`chaos_check --repro`).
//!
//! The quarantine directory is process-global configuration, set once
//! at startup from the `GEVO_QUARANTINE` knob (the same pattern as
//! `gevo_gpu::set_opt_level`): evaluation happens deep inside the
//! engine where threading a path through every call site would touch
//! the entire GA for a debugging-only concern. Writes are best-effort
//! — a full disk must not turn a survived panic into a fatal error —
//! and failures are reported on stderr.

use crate::edit::Patch;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

fn dir_cell() -> &'static Mutex<Option<PathBuf>> {
    static CELL: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(None))
}

/// Sets (or clears) the process-wide quarantine directory.
pub fn set_dir(dir: Option<PathBuf>) {
    *dir_cell().lock().expect("quarantine dir lock") = dir;
}

/// The quarantine directory currently in force, if any.
#[must_use]
pub fn dir() -> Option<PathBuf> {
    dir_cell().lock().expect("quarantine dir lock").clone()
}

/// Everything needed to replay a panic-provoking evaluation: the
/// workload registry name, the exact patch, the scheduler seed in
/// force, and the captured panic message.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineRecord {
    /// Workload registry name (`adept-v0`, `adept-v1`, `simcov`).
    pub workload: String,
    /// The variant that provoked the panic.
    pub patch: Patch,
    /// Scheduler seed the evaluation ran under.
    pub eval_seed: u64,
    /// The failure as scored (`panic: <captured message>`).
    pub reason: String,
}

impl QuarantineRecord {
    /// Serializes to a JSON object.
    #[must_use]
    pub fn to_json(&self) -> serde_json::Value {
        let mut obj = serde_json::Map::new();
        obj.insert("workload", self.workload.clone());
        obj.insert("patch", self.patch.to_json());
        obj.insert("eval_seed", self.eval_seed);
        obj.insert("reason", self.reason.clone());
        serde_json::Value::Object(obj)
    }

    /// Deserializes the [`to_json`](Self::to_json) representation.
    ///
    /// # Errors
    /// Returns a message naming the malformed field.
    pub fn from_json(v: &serde_json::Value) -> Result<Self, String> {
        let str_field = |name: &str| {
            v.get(name)
                .and_then(serde_json::Value::as_str)
                .map(ToString::to_string)
                .ok_or_else(|| format!("QuarantineRecord: missing or invalid {name}"))
        };
        Ok(QuarantineRecord {
            workload: str_field("workload")?,
            patch: Patch::from_json(v.get("patch").ok_or("QuarantineRecord: missing patch")?)?,
            eval_seed: v
                .get("eval_seed")
                .and_then(serde_json::Value::as_u64)
                .ok_or("QuarantineRecord: missing or invalid eval_seed")?,
            reason: str_field("reason")?,
        })
    }

    /// The file name this record quarantines under: workload slug plus
    /// the patch content hash, so re-quarantining the same variant
    /// overwrites instead of accumulating duplicates.
    #[must_use]
    pub fn file_name(&self) -> String {
        let slug: String = self
            .workload
            .to_lowercase()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        format!(
            "{}-{:016x}.quarantine.json",
            slug.trim_matches('-'),
            self.patch.content_hash()
        )
    }

    /// Writes the record into `dir` (created if missing).
    ///
    /// # Errors
    /// Returns a message when the directory or file cannot be written.
    pub fn write_to(&self, dir: &Path) -> Result<PathBuf, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create quarantine dir {}: {e}", dir.display()))?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json().to_string())
            .map_err(|e| format!("cannot write quarantine file {}: {e}", path.display()))?;
        Ok(path)
    }

    /// Loads a record written by [`write_to`](Self::write_to).
    ///
    /// # Errors
    /// Returns a message when the file cannot be read or decoded.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read quarantine file {}: {e}", path.display()))?;
        let value = serde_json::from_str(&text)
            .map_err(|e| format!("quarantine file {} is not valid JSON: {e}", path.display()))?;
        Self::from_json(&value).map_err(|e| format!("quarantine file {}: {e}", path.display()))
    }
}

/// Best-effort quarantine into the process-wide directory: a no-op when
/// no directory is configured, and a stderr report (never a panic) when
/// the write fails — quarantine must not make a survived panic fatal.
// The returned path is informational; the evaluator fires and forgets.
#[allow(clippy::must_use_candidate)]
pub fn quarantine(record: &QuarantineRecord) -> Option<PathBuf> {
    let dir = dir()?;
    match record.write_to(&dir) {
        Ok(path) => Some(path),
        Err(e) => {
            eprintln!("gevo: quarantine write failed: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::Edit;

    fn sample() -> QuarantineRecord {
        QuarantineRecord {
            workload: "adept-v0[P100]".to_string(),
            patch: Patch::from_edits(vec![Edit::Delete {
                kernel: 0,
                target: gevo_ir::InstId(3),
            }]),
            eval_seed: 42,
            reason: "panic: index out of bounds".to_string(),
        }
    }

    #[test]
    fn record_round_trips_through_json() {
        let rec = sample();
        let back = QuarantineRecord::from_json(&rec.to_json()).expect("round trip");
        assert_eq!(back, rec);
    }

    #[test]
    fn record_round_trips_through_a_file() {
        let dir = std::env::temp_dir().join("gevo-quarantine-test");
        std::fs::remove_dir_all(&dir).ok();
        let rec = sample();
        let path = rec.write_to(&dir).expect("write record");
        assert!(path
            .file_name()
            .is_some_and(|n| n.to_string_lossy().ends_with(".quarantine.json")));
        let back = QuarantineRecord::load(&path).expect("load record");
        assert_eq!(back, rec);
        // Same variant re-quarantined lands on the same file.
        assert_eq!(rec.write_to(&dir).expect("rewrite"), path);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_json_names_the_bad_field() {
        let mut obj = serde_json::Map::new();
        obj.insert("workload", "adept-v0");
        let err = QuarantineRecord::from_json(&serde_json::Value::Object(obj))
            .expect_err("missing fields must fail");
        assert!(err.contains("patch"), "{err}");
    }
}
