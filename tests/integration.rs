//! Cross-crate integration tests: the full pipeline from IR construction
//! through simulation, evolution and analysis, exercised the way the
//! figure harnesses use it.

use gevo_repro::prelude::*;

fn quick_cfg(seed: u64, pop: usize, gens: usize) -> GaConfig {
    GaConfig {
        population: pop,
        generations: gens,
        seed,
        threads: 2,
        ..GaConfig::scaled()
    }
}

/// The paper's headline: evolution alone finds an order-of-magnitude
/// improvement on the naive ADEPT port.
#[test]
fn ga_finds_order_of_magnitude_on_adept_v0() {
    let w = AdeptWorkload::new(AdeptConfig::scaled(Version::V0));
    let result = Search::new(&w).config(quick_cfg(3, 20, 12)).run();
    assert!(
        result.speedup > 5.0,
        "GA speedup on V0 was only {:.2}x",
        result.speedup
    );
    // Held-out validation (paper §III-C): the scaled fitness batch (8
    // pairs vs the paper's 30k) under-constrains the search, so evolved
    // patches sometimes fail fresh pairs — exactly the paper's §VII
    // point that test suites define the spec and held-out tests (or the
    // developer) catch the rest. Either verdict is acceptable here; what
    // matters is that validation *detects* mismatches cleanly.
    let (patched, _) = result.best.patch.apply(w.kernels());
    let mut dced = patched;
    for k in &mut dced {
        let _ = gevo_repro::ir::transform::dce(k);
    }
    match w.validate_heldout(&dced, 16, 4242) {
        Ok(()) => {}
        Err(e) => assert!(
            e.contains("pair") || e.contains("kernel"),
            "held-out failure is a clean detection: {e}"
        ),
    }
    // The curated optimization, by contrast, is semantics-preserving and
    // must pass.
    let (curated, _) = w.curated_patch().apply(w.kernels());
    w.validate_heldout(&curated, 16, 4242)
        .expect("curated patch passes held-out pairs");
}

/// Evolution improves even the hand-tuned version (paper: 1.1x-1.33x).
#[test]
fn ga_improves_hand_tuned_adept_v1() {
    let w = AdeptWorkload::new(AdeptConfig::scaled(Version::V1));
    let result = Search::new(&w).config(quick_cfg(1, 24, 25)).run();
    assert!(
        result.speedup > 1.03,
        "GA speedup on V1 was only {:.3}x",
        result.speedup
    );
}

/// The complete Section V pipeline on the curated V1 patch recovers the
/// paper's dependency structure.
#[test]
fn section_v_pipeline_recovers_fig7_structure() {
    let w = AdeptWorkload::new(AdeptConfig::scaled(Version::V1));
    let ev = Evaluator::new(&w);
    let patch = w.curated_patch();

    let min = minimize_weak_edits(&ev, &patch, 0.01);
    assert!(min.kept.len() < patch.len(), "some edits are weak");
    assert!(
        min.speedup_minimized > 1.15,
        "minimized patch keeps most of the gain: {:.3}",
        min.speedup_minimized
    );

    let split = split_independent(&ev, &min.kept, 0.01);
    assert!(!split.independent.is_empty(), "independent edits exist");
    assert!(!split.epistatic.is_empty(), "epistatic edits exist");

    let base = Patch::from_edits(split.epistatic.clone());
    let table = subset_analysis(&ev, &base, &split.epistatic);
    let graph = dependency_graph(&table);

    // The paper's signature: consumers fail alone and require the
    // enabler; at least one multi-edit subgroup exists.
    assert!(
        graph.fails_alone.iter().any(|&f| f),
        "some epistatic edits fail alone"
    );
    assert!(
        graph.requires.iter().any(|r| !r.is_empty()),
        "dependency edges exist"
    );
    assert!(
        graph.subgroups.iter().any(|g| g.len() >= 2),
        "a multi-edit epistatic subgroup exists"
    );
}

/// §IV generality: the curated patch wins on every GPU spec.
#[test]
fn curated_patches_port_across_gpus() {
    for spec in [
        gevo_repro::gpu::GpuSpec::p100(),
        gevo_repro::gpu::GpuSpec::gtx1080ti(),
        gevo_repro::gpu::GpuSpec::v100(),
    ] {
        let mut scaled = spec.scaled(8);
        scaled.device_mem_bytes = 1 << 20;
        let w = AdeptWorkload::new(AdeptConfig::scaled(Version::V0).with_spec(scaled));
        let ev = Evaluator::new(&w);
        let s = ev
            .speedup(&w.curated_patch())
            .expect("patch valid everywhere");
        assert!(s > 5.0, "{}: V0 curated speedup {s:.1}", spec.name);
    }
}

/// The §VI-B architecture dependence: deleting ballot_sync matters on the
/// Volta-class spec, not on Pascal.
#[test]
fn ballot_removal_is_architecture_dependent() {
    let gain_on = |spec: gevo_repro::gpu::GpuSpec| -> f64 {
        let mut scaled = spec.scaled(8);
        scaled.device_mem_bytes = 1 << 20;
        let w = AdeptWorkload::new(AdeptConfig::scaled(Version::V1).with_spec(scaled));
        let ev = Evaluator::new(&w);
        let p = Patch::from_edits(vec![w.edit("v1:k0:del_ballot"), w.edit("v1:k1:del_ballot")]);
        ev.speedup(&p).expect("deleting ballot is safe") - 1.0
    };
    let pascal = gain_on(gevo_repro::gpu::GpuSpec::p100());
    let volta = gain_on(gevo_repro::gpu::GpuSpec::v100());
    assert!(
        volta > pascal * 3.0,
        "volta gain {volta:.4} should dwarf pascal's {pascal:.4}"
    );
    assert!(volta > 0.02, "several percent on Volta: {volta:.4}");
}

/// SIMCoV's Fig. 10 story end-to-end: removal passes small, faults large,
/// padding passes everywhere.
#[test]
fn fig10_boundary_story() {
    let w = SimcovWorkload::new(SimcovConfig::scaled());
    let boundary = Patch::from_edits(w.boundary_edits());
    let ev = Evaluator::new(&w);
    assert!(ev.speedup(&boundary).expect("valid on small grid") > 1.05);
    assert!(
        w.validate_heldout(&boundary, 64, 3).is_err(),
        "large grid faults"
    );
    let padded = SimcovWorkload::new(SimcovConfig::scaled().padded());
    padded
        .validate_heldout(&Patch::empty(), 64, 3)
        .expect("padded grid needs no checks");
}

/// Cross-workload determinism: the same GA seed reproduces the same
/// result across the full stack.
#[test]
fn full_stack_determinism() {
    let w = AdeptWorkload::new(AdeptConfig::scaled(Version::V0));
    let a = Search::new(&w).config(quick_cfg(11, 12, 6)).run();
    let b = Search::new(&w).config(quick_cfg(11, 12, 6)).run();
    assert_eq!(a.best.patch, b.best.patch);
    assert_eq!(a.speedup, b.speedup);
}

/// The island acceptance bar: at an equal total evaluation budget on
/// ADEPT-V0 with a fixed seed, four islands with ring migration match
/// or beat the single panmictic population (the whole stack is
/// deterministic, so this is a stable regression test, not a flake).
#[test]
fn four_islands_match_or_beat_one_at_equal_budget() {
    let w = AdeptWorkload::new(AdeptConfig::scaled(Version::V0));
    let ga = quick_cfg(2, 20, 8);
    let single = Search::new(&w).config(ga.clone()).run();
    let multi = Search::new(&w)
        .config(ga)
        .islands(4)
        .migration_interval(3)
        .run();
    assert!(
        multi.best.fitness.unwrap() <= single.best.fitness.unwrap(),
        "4 islands ({:.0} cycles) should match or beat 1 island ({:.0} cycles)",
        multi.best.fitness.unwrap(),
        single.best.fitness.unwrap()
    );
    assert!(!multi.history.migrations.is_empty(), "migration happened");
    assert_eq!(multi.islands.len(), 4);
}

/// Same seed + same island count reproduces the identical result —
/// best fitness, full global history, per-island histories, evals.
#[test]
fn island_engine_full_stack_determinism() {
    let w = AdeptWorkload::new(AdeptConfig::scaled(Version::V0));
    let run = || {
        Search::new(&w)
            .config(quick_cfg(11, 16, 5))
            .islands(3)
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.best.fitness, b.best.fitness);
    assert_eq!(a.best.patch, b.best.patch);
    assert_eq!(a.history, b.history);
    assert_eq!(a.islands, b.islands);
    assert_eq!(a.evals, b.evals);
}
