//! `gevo-serve` — a minimal durable job server over the search engine.
//!
//! Accepts line-delimited JSON jobs on **stdin** or over a plain
//! `std::net::TcpListener` (`--listen ADDR`; no web framework), runs
//! each search on its own worker thread, streams engine events back as
//! they happen, and checkpoints every N generations so a `SIGKILL` at
//! any moment loses at most N generations of work: on restart the
//! server rescans its state directory and resumes every unfinished job
//! from its last checkpoint. DESIGN.md §3.6 documents the protocol.
//!
//! ```text
//! gevo-serve --state-dir DIR [--listen ADDR] [--exit-when-idle]
//! ```
//!
//! Operations (one JSON object per line):
//!
//! ```text
//! {"op":"submit","id":"j1","workload":"adept-v0","pop":8,"gens":6,"seed":3}
//! {"op":"status"}
//! {"op":"shutdown"}
//! ```
//!
//! Events (one JSON object per line, to the submitting stream):
//!
//! ```text
//! {"event":"accepted","id":"j1","recovered":false}
//! {"event":"generation","id":"j1","gen":0,"best_fitness":..,"best_speedup":..}
//! {"event":"migration","id":"j1","gen":..,"from":0,"to":1}
//! {"event":"done","id":"j1","speedup":..,"result":"<path>.done.json"}
//! {"event":"error","id":"j1","message":".."}
//! {"event":"status","jobs":[{"id":"j1","state":"running"}, ..]}
//! ```
//!
//! Durability: `<id>.job.json` (the resolved job, written atomically on
//! accept), `<id>.ckpt.json` (checkpoint, cadence
//! `GEVO_CHECKPOINT_EVERY`, default 5), `<id>.done.json` (final
//! [`gevo_engine::SearchResult`]). All writes are atomic
//! (temp + rename), so a kill can truncate nothing.

use gevo_bench::checkpoint::{load_state, write_atomic};
use gevo_bench::{env_usize, workload_by_name};
use gevo_engine::{
    GaConfig, GenerationRecord, MigrationEvent, Search, SearchObserver, SearchSpec, SearchState,
    StepStatus,
};
use serde_json::Value;
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};

/// Where a job's events go: the stdout printer thread, or the TCP
/// connection that submitted it.
#[derive(Clone)]
enum Sink {
    Stdout(mpsc::Sender<String>),
    Socket(Arc<Mutex<TcpStream>>),
}

impl Sink {
    fn emit(&self, line: &str) {
        match self {
            Sink::Stdout(tx) => {
                let _ = tx.send(line.to_string());
            }
            Sink::Socket(stream) => {
                if let Ok(mut s) = stream.lock() {
                    let _ = writeln!(s, "{line}");
                    let _ = s.flush();
                }
            }
        }
    }
}

/// Shared server state: job table + idle signaling.
struct Manager {
    dir: PathBuf,
    every: usize,
    jobs: Mutex<BTreeMap<String, &'static str>>,
    idle: Condvar,
}

impl Manager {
    fn set_state(&self, id: &str, state: &'static str) {
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        jobs.insert(id.to_string(), state);
        self.idle.notify_all();
    }

    fn wait_idle(&self) {
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        while jobs.values().any(|s| *s == "queued" || *s == "running") {
            jobs = self.idle.wait(jobs).expect("job table poisoned");
        }
    }

    fn status_line(&self) -> String {
        let jobs = self.jobs.lock().expect("job table poisoned");
        let rows: Vec<Value> = jobs
            .iter()
            .map(|(id, state)| {
                let mut row = serde_json::Map::new();
                row.insert("id", id.clone());
                row.insert("state", *state);
                Value::Object(row)
            })
            .collect();
        let mut obj = serde_json::Map::new();
        obj.insert("event", "status");
        obj.insert("jobs", Value::Array(rows));
        Value::Object(obj).to_string()
    }
}

/// One accepted job: id + workload registry name + fully resolved spec.
#[derive(Clone)]
struct Job {
    id: String,
    workload: String,
    spec: SearchSpec,
}

impl Job {
    fn to_json(&self) -> Value {
        let mut obj = serde_json::Map::new();
        obj.insert("id", self.id.clone());
        obj.insert("workload", self.workload.clone());
        obj.insert("spec", self.spec.to_json());
        Value::Object(obj)
    }

    fn from_json(v: &Value) -> Result<Job, String> {
        let id = v
            .get("id")
            .and_then(Value::as_str)
            .ok_or("job: missing id")?;
        let workload = v
            .get("workload")
            .and_then(Value::as_str)
            .ok_or("job: missing workload")?;
        let spec = SearchSpec::from_json(v.get("spec").ok_or("job: missing spec")?)?;
        Ok(Job {
            id: id.to_string(),
            workload: workload.to_string(),
            spec,
        })
    }
}

fn event(kind: &str, id: &str) -> serde_json::Map {
    let mut obj = serde_json::Map::new();
    obj.insert("event", kind);
    obj.insert("id", id);
    obj
}

/// Streams engine callbacks out as serve events.
struct ServeObserver {
    id: String,
    sink: Sink,
}

impl SearchObserver for ServeObserver {
    fn on_generation(&mut self, record: &GenerationRecord) {
        let mut obj = event("generation", &self.id);
        obj.insert("gen", record.gen);
        obj.insert("best_fitness", record.best_fitness);
        obj.insert("best_speedup", record.best_speedup);
        self.sink.emit(&Value::Object(obj).to_string());
    }

    fn on_migration(&mut self, ev: &MigrationEvent) {
        let mut obj = event("migration", &self.id);
        obj.insert("gen", ev.gen);
        obj.insert("from", ev.from);
        obj.insert("to", ev.to);
        self.sink.emit(&Value::Object(obj).to_string());
    }
}

fn job_path(dir: &Path, id: &str, kind: &str) -> PathBuf {
    dir.join(format!("{id}.{kind}.json"))
}

/// The worker: resume from the job's checkpoint if one exists, stream
/// events, checkpoint on cadence, persist the final result, report.
fn run_job(mgr: &Arc<Manager>, job: &Job, sink: &Sink) {
    mgr.set_state(&job.id, "running");
    let fail = |msg: String| {
        let mut obj = event("error", &job.id);
        obj.insert("message", msg);
        sink.emit(&Value::Object(obj).to_string());
        mgr.set_state(&job.id, "error");
    };
    let Some(w) = workload_by_name(&job.workload) else {
        fail(format!("unknown workload {:?}", job.workload));
        return;
    };
    let ckpt = job_path(&mgr.dir, &job.id, "ckpt");
    let state: Option<SearchState> = if ckpt.exists() {
        match load_state(&ckpt) {
            Ok(s) => Some(s),
            Err(e) => {
                fail(e);
                return;
            }
        }
    } else {
        None
    };
    let mut obs = ServeObserver {
        id: job.id.clone(),
        sink: sink.clone(),
    };
    let mut search = match &state {
        Some(s) => Search::resume(w.as_ref(), s),
        None => Search::from_spec(w.as_ref(), job.spec.clone()),
    }
    .observer(&mut obs);
    while let StepStatus::Advanced { gen } = search.step() {
        if (gen + 1) % mgr.every == 0 {
            write_atomic(&ckpt, &search.checkpoint().to_json().to_string());
        }
    }
    let result = search.into_result();
    let done = job_path(&mgr.dir, &job.id, "done");
    write_atomic(&done, &result.to_json().to_string());
    let mut obj = event("done", &job.id);
    obj.insert("speedup", result.speedup);
    obj.insert("result", done.display().to_string());
    sink.emit(&Value::Object(obj).to_string());
    mgr.set_state(&job.id, "done");
}

/// Accepts a job (persist + queue + spawn worker). `recovered` marks
/// jobs re-queued by the startup scan.
fn accept_job(mgr: &Arc<Manager>, job: Job, sink: &Sink, recovered: bool) {
    if job_path(&mgr.dir, &job.id, "done").exists() {
        // Idempotent: the job already completed in a previous life.
        let mut obj = event("done", &job.id);
        obj.insert("speedup", Value::Null);
        obj.insert(
            "result",
            job_path(&mgr.dir, &job.id, "done").display().to_string(),
        );
        sink.emit(&Value::Object(obj).to_string());
        mgr.set_state(&job.id, "done");
        return;
    }
    if !recovered {
        write_atomic(
            &job_path(&mgr.dir, &job.id, "job"),
            &job.to_json().to_string(),
        );
    }
    mgr.set_state(&job.id, "queued");
    let mut obj = event("accepted", &job.id);
    obj.insert("recovered", recovered);
    sink.emit(&Value::Object(obj).to_string());
    let mgr = Arc::clone(mgr);
    let sink = sink.clone();
    std::thread::spawn(move || run_job(&mgr, &job, &sink));
}

/// Builds the resolved job from a submit op: either an explicit
/// `"spec"` object, or the shorthand pop/gens/seed/islands/migration
/// fields over scaled defaults (threads pinned to 1 — determinism
/// before latency for durable jobs).
fn job_from_submit(v: &Value) -> Result<Job, String> {
    let id = v
        .get("id")
        .and_then(Value::as_str)
        .ok_or("submit: missing id")?;
    if id.is_empty()
        || !id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err(format!(
            "submit: id {id:?} must be non-empty [A-Za-z0-9_-] (it names state files)"
        ));
    }
    let workload = v
        .get("workload")
        .and_then(Value::as_str)
        .ok_or("submit: missing workload")?;
    let spec = if let Some(s) = v.get("spec") {
        SearchSpec::from_json(s)?
    } else {
        let num = |name: &str, default: usize| -> usize {
            v.get(name)
                .and_then(Value::as_u64)
                .and_then(|u| usize::try_from(u).ok())
                .unwrap_or(default)
        };
        let mut spec = SearchSpec {
            ga: GaConfig {
                population: num("pop", 8),
                generations: num("gens", 6),
                seed: v.get("seed").and_then(Value::as_u64).unwrap_or(1),
                threads: 1,
                ..GaConfig::scaled()
            },
            islands: num("islands", 1).max(1),
            ..SearchSpec::default()
        };
        spec.migration_interval = num("migration", spec.migration_interval);
        spec
    };
    Ok(Job {
        id: id.to_string(),
        workload: workload.to_string(),
        spec,
    })
}

/// Handles one op line; returns `true` when the server should shut
/// down.
fn handle_line(mgr: &Arc<Manager>, line: &str, sink: &Sink) -> bool {
    let line = line.trim();
    if line.is_empty() {
        return false;
    }
    let v = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => {
            let mut obj = event("error", "");
            obj.insert("message", format!("bad JSON: {e}"));
            sink.emit(&Value::Object(obj).to_string());
            return false;
        }
    };
    match v.get("op").and_then(Value::as_str).unwrap_or("") {
        "submit" => match job_from_submit(&v) {
            Ok(job) => accept_job(mgr, job, sink, false),
            Err(msg) => {
                let mut obj = event("error", v.get("id").and_then(Value::as_str).unwrap_or(""));
                obj.insert("message", msg);
                sink.emit(&Value::Object(obj).to_string());
            }
        },
        "status" => sink.emit(&mgr.status_line()),
        "shutdown" => return true,
        _ => {
            let mut obj = event("error", "");
            obj.insert("message", format!("unknown op in {line:?}"));
            sink.emit(&Value::Object(obj).to_string());
        }
    }
    false
}

/// Startup recovery: re-queue every `<id>.job.json` without a matching
/// `<id>.done.json`, in lexicographic id order.
fn recover(mgr: &Arc<Manager>, sink: &Sink) {
    let Ok(entries) = std::fs::read_dir(&mgr.dir) else {
        return;
    };
    let mut job_files: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().ends_with(".job.json"))
        })
        .collect();
    job_files.sort();
    for path in job_files {
        let job = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| serde_json::from_str(&text).map_err(|e| e.to_string()))
            .and_then(|v| Job::from_json(&v));
        match job {
            Ok(job) => accept_job(mgr, job, sink, true),
            Err(e) => {
                let mut obj = event("error", "");
                obj.insert(
                    "message",
                    format!("unreadable job file {}: {e}", path.display()),
                );
                sink.emit(&Value::Object(obj).to_string());
            }
        }
    }
}

fn arg_value(flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let Some(dir) = arg_value("--state-dir").map(PathBuf::from) else {
        eprintln!("usage: gevo-serve --state-dir DIR [--listen ADDR] [--exit-when-idle]");
        std::process::exit(2);
    };
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| {
        eprintln!("cannot create state dir {}: {e}", dir.display());
        std::process::exit(2);
    });
    let exit_when_idle = std::env::args().any(|a| a == "--exit-when-idle");
    let mgr = Arc::new(Manager {
        dir,
        every: env_usize("GEVO_CHECKPOINT_EVERY", 5).max(1),
        jobs: Mutex::new(BTreeMap::new()),
        idle: Condvar::new(),
    });

    // Printer thread owns stdout; every stdin-submitted or recovered
    // job's events flow through it, one line each.
    let (tx, rx) = mpsc::channel::<String>();
    let printer = std::thread::spawn(move || {
        let stdout = std::io::stdout();
        for line in rx {
            let mut out = stdout.lock();
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        }
    });
    let stdout_sink = Sink::Stdout(tx);

    recover(&mgr, &stdout_sink);

    if let Some(addr) = arg_value("--listen") {
        let listener = std::net::TcpListener::bind(&addr).unwrap_or_else(|e| {
            eprintln!("cannot listen on {addr}: {e}");
            std::process::exit(2);
        });
        let mgr = Arc::clone(&mgr);
        std::thread::spawn(move || {
            for stream in listener.incoming().filter_map(Result::ok) {
                let mgr = Arc::clone(&mgr);
                std::thread::spawn(move || {
                    let reader =
                        std::io::BufReader::new(stream.try_clone().expect("tcp stream clones"));
                    let sink = Sink::Socket(Arc::new(Mutex::new(stream)));
                    for line in reader.lines().map_while(Result::ok) {
                        if handle_line(&mgr, &line, &sink) {
                            // Shutdown over TCP: drain and exit.
                            mgr.wait_idle();
                            std::process::exit(0);
                        }
                    }
                });
            }
        });
    }

    let stdin = std::io::stdin();
    for line in stdin.lock().lines().map_while(Result::ok) {
        if handle_line(&mgr, &line, &stdout_sink) {
            break; // shutdown op: stop accepting, drain below.
        }
    }

    if exit_when_idle {
        mgr.wait_idle();
        drop(stdout_sink);
        let _ = printer.join();
        std::process::exit(0);
    }
    // Without --exit-when-idle, stdin EOF still drains the queue before
    // exiting (a TCP listener, if any, dies with the process).
    mgr.wait_idle();
    drop(stdout_sink);
    let _ = printer.join();
}
