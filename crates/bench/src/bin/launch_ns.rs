//! Per-launch wall-clock probe, one case per process invocation.
//!
//! Prints a single JSON line with the measured ns/launch. The point of
//! the process granularity: interleaving *processes* built from two
//! different commits (`A B A B …`) is the only way to A/B-compare code
//! versions that cannot coexist in one binary, while still sampling both
//! sides under the same minutes-scale machine drift. EXPERIMENTS.md
//! records the methodology; `benches/compile.rs` does the in-process
//! interleaving for contrasts that do coexist (source vs compiled,
//! fresh vs reused scratch).
//!
//! Usage: `launch_ns <adept_v0|simcov_cdiff|simcov_eval> [iters]`
//!
//! Honors `GEVO_OPT` (`0` = O0 control arm, else the O2 lowering
//! passes); the JSON line records the level in force plus the compiled
//! case's static pass counts, so an A/B of two invocations is
//! self-describing.

use gevo_bench::{cases, opt_knob};
use gevo_engine::Workload;
use gevo_gpu::CompiledKernel;
use std::hint::black_box;
use std::time::Instant;

#[allow(clippy::cast_precision_loss)]
fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..(iters / 10).max(3) {
        f(); // warmup
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let opt = opt_knob();
    let mut args = std::env::args().skip(1);
    let case = args.next().unwrap_or_else(|| "adept_v0".into());
    let mut iters: usize = args.next().and_then(|v| v.parse().ok()).unwrap_or(2000);

    let (ns_per_iter, launches_per_iter, mix) = match case.as_str() {
        "adept_v0" | "simcov_cdiff" => {
            let (mut gpu, kernel, cfg, kargs) = if case == "adept_v0" {
                cases::adept_v0_case()
            } else {
                cases::simcov_cdiff_case()
            };
            let compiled = gpu.compile(&kernel).expect("pristine kernel compiles");
            // GEVO_PROBE_STATS=1 dumps the case's instruction mix to
            // stderr, for sanity-checking what a ns/launch figure is
            // actually amortized over.
            if std::env::var("GEVO_PROBE_STATS").is_ok() {
                let s = gpu.launch_compiled(&compiled, cfg, &kargs).unwrap();
                eprintln!(
                    "insts={} alu={} glob={} shared={} div={} warps/blk={} blocks={}",
                    s.instructions,
                    s.alu_instructions,
                    s.global_accesses,
                    s.shared_accesses,
                    s.divergent_branches,
                    s.warps_per_block,
                    s.blocks
                );
            }
            let ns = time_ns(iters, || {
                black_box(gpu.launch_compiled(&compiled, cfg, &kargs).expect("launch"));
            });
            let mix = static_mix(std::slice::from_ref(&compiled));
            (ns, 1.0, mix)
        }
        "simcov_eval" => {
            let (w, compiled, launches) = cases::simcov_eval_case();
            // Full evaluations are ~10^3x slower than single launches;
            // clamp to a sane sample and report the count actually run.
            iters = iters.clamp(5, 60);
            let ns = time_ns(iters, || {
                assert!(black_box(w.evaluate_compiled(&compiled, 0)).is_valid());
            });
            let mix = static_mix(&compiled);
            (ns, launches, mix)
        }
        other => {
            eprintln!("unknown case {other}; want adept_v0|simcov_cdiff|simcov_eval");
            std::process::exit(2);
        }
    };
    let (insts, uniform, folded) = mix;
    println!(
        "{{\"case\":\"{case}\",\"opt\":\"{opt:?}\",\"iters\":{iters},\
         \"ns_per_iter\":{ns_per_iter:.1},\"ns_per_launch\":{:.1},\
         \"insts\":{insts},\"uniform_insts\":{uniform},\"folded_insts\":{folded}}}",
        ns_per_iter / launches_per_iter
    );
}

/// Static pass counts of the compiled case: total instructions lowered,
/// uniform-tagged and folded (both zero at O0).
fn static_mix(compiled: &[CompiledKernel]) -> (usize, usize, usize) {
    (
        compiled.iter().map(CompiledKernel::inst_count).sum(),
        compiled
            .iter()
            .map(CompiledKernel::uniform_inst_count)
            .sum(),
        compiled.iter().map(CompiledKernel::folded_inst_count).sum(),
    )
}
