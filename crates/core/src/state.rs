//! Serializable search state: checkpoint/resume across process
//! boundaries.
//!
//! [`SearchState`] is the complete run state of a [`crate::Search`]
//! session between two generations — per-island populations and
//! histories, every RNG stream captured as a `(seed, word position)`
//! pair ([`gevo_ir::StreamState`]), the Pareto archive with its
//! dedup set, the evaluator's outcome cache and counters, and the index
//! of the next generation to execute. The contract, pinned by tier-1
//! tests: *checkpoint at any generation, serialize to JSON, reload in a
//! fresh process, resume — and the remaining trajectory is bit-identical
//! to the uninterrupted run* (same [`crate::SearchResult`], same
//! observer event stream).
//!
//! ## JSON conventions
//!
//! The in-tree `serde` shim provides marker traits only, so every type
//! converts explicitly through inherent `to_json`/`from_json` methods
//! over [`serde_json::Value`]. Two rules keep the byte stream
//! deterministic across processes:
//!
//! 1. **Hash containers serialize sorted.** `History`'s
//!    `first_seen_in_best` map is written as an array sorted by
//!    `(generation, edit JSON)`; the Pareto dedup set as a sorted array
//!    of hashes; the evaluator cache sorted by content hash.
//! 2. **Non-finite floats are strings.** The only non-finite value in
//!    the state is a failing outcome's `error` (`inf`), encoded as the
//!    string `"inf"` by [`crate::EvalOutcome::to_json`]; everything else
//!    is finite by construction and round-trips exactly through the
//!    shim's shortest-representation float encoding.
//!
//! The envelope carries `"format": 1`; [`SearchState::from_json`]
//! rejects anything else so a stale binary fails loudly instead of
//! misreading a newer checkpoint.
//!
//! This module validates *structure* (format version, field shapes);
//! *integrity* of checkpoint files against torn writes and bit rot is
//! the storage layer's job: `gevo_bench::checkpoint` seals every file
//! with a CRC-32 footer, rotates the previous snapshot to
//! `<file>.1`, and rolls back to it when verification fails (DESIGN.md
//! §3.9). Decode errors from here are what trigger that rollback.

use crate::adapt::{AdaptPolicy, AdaptSnapshot};
use crate::edit::{Edit, Patch};
use crate::fitness::EvaluatorSnapshot;
use crate::ga::{GaConfig, GenerationRecord, History, Individual};
use crate::island::{MigrationEvent, Topology};
use crate::mutation::MutationWeights;
use crate::search::{Objective, ParetoPoint, SearchResult, SearchSpec, Selection};
use gevo_ir::{InstId, Operand, StreamState};
use serde_json::Value;

/// The checkpoint format version this build reads and writes.
pub const STATE_FORMAT: u64 = 1;

/// One island's live state: its RNG stream position, population with
/// cached fitness, NSGA-II score vectors, current ranking, recorded
/// history and best-so-far individual.
#[derive(Debug, Clone, PartialEq)]
pub struct IslandSnapshot {
    /// The island's breeding RNG, captured mid-stream.
    pub rng: StreamState,
    /// The population as bred for the next generation.
    pub population: Vec<Individual>,
    /// Per-individual objective scores (NSGA-II mode only; empty vec =
    /// invalid individual), parallel to `population`.
    pub scores: Vec<Vec<f64>>,
    /// Valid individuals of the last evaluated generation, best first.
    pub ranked: Vec<usize>,
    /// The island's own trajectory so far.
    pub history: History,
    /// Best individual this island has seen.
    pub best: Individual,
    /// The island's adaptive-scheduler state ([`crate::adapt`]):
    /// `None` for uniform runs (whose snapshots stay byte-identical to
    /// the pre-adapt format), `Some` whenever a scheduler runs.
    pub adapt: Option<AdaptSnapshot>,
}

/// The complete state of a search session between two generations —
/// everything [`crate::Search::resume`] needs to continue the run
/// bit-identically. Produced by [`crate::Search::checkpoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearchState {
    /// Name of the workload the state was captured from.
    /// [`crate::Search::resume`] refuses a mismatching workload.
    pub workload: String,
    /// The full declarative spec of the run.
    pub spec: SearchSpec,
    /// The mutation-operator weights in force.
    pub weights: MutationWeights,
    /// The next generation to execute (0 = nothing run yet).
    pub gen: usize,
    /// Baseline fitness of the pristine program.
    pub baseline: f64,
    /// Per-island state, in island order.
    pub islands: Vec<IslandSnapshot>,
    /// The dedicated migration-topology RNG, captured mid-stream.
    pub mig_rng: StreamState,
    /// The global trajectory recorded so far.
    pub history: History,
    /// Best individual across all islands so far.
    pub best: Individual,
    /// The Pareto archive (multi-objective runs; empty otherwise).
    pub pareto: Vec<ParetoPoint>,
    /// Content hashes of every genome ever offered to the archive,
    /// sorted ascending (the archive's dedup set).
    pub pareto_seen: Vec<u64>,
    /// The evaluator's outcome cache and counters.
    pub evaluator: EvaluatorSnapshot,
}

// ---------------------------------------------------------------------
// Decode helpers.
// ---------------------------------------------------------------------

fn want<'v>(v: &'v Value, name: &str, ctx: &str) -> Result<&'v Value, String> {
    v.get(name)
        .ok_or_else(|| format!("{ctx}: missing field {name:?}"))
}

fn want_u64(v: &Value, name: &str, ctx: &str) -> Result<u64, String> {
    want(v, name, ctx)?
        .as_u64()
        .ok_or_else(|| format!("{ctx}: field {name:?} is not a u64"))
}

fn want_usize(v: &Value, name: &str, ctx: &str) -> Result<usize, String> {
    usize::try_from(want_u64(v, name, ctx)?)
        .map_err(|_| format!("{ctx}: field {name:?} exceeds usize"))
}

fn want_u32(v: &Value, name: &str, ctx: &str) -> Result<u32, String> {
    u32::try_from(want_u64(v, name, ctx)?).map_err(|_| format!("{ctx}: field {name:?} exceeds u32"))
}

fn want_f64(v: &Value, name: &str, ctx: &str) -> Result<f64, String> {
    want(v, name, ctx)?
        .as_f64()
        .ok_or_else(|| format!("{ctx}: field {name:?} is not a number"))
}

fn want_str<'v>(v: &'v Value, name: &str, ctx: &str) -> Result<&'v str, String> {
    want(v, name, ctx)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: field {name:?} is not a string"))
}

fn want_array<'v>(v: &'v Value, name: &str, ctx: &str) -> Result<&'v [Value], String> {
    want(v, name, ctx)?
        .as_array()
        .map(Vec::as_slice)
        .ok_or_else(|| format!("{ctx}: field {name:?} is not an array"))
}

fn f64_array(v: &Value, name: &str, ctx: &str) -> Result<Vec<f64>, String> {
    want_array(v, name, ctx)?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| format!("{ctx}: field {name:?} has a non-number element"))
        })
        .collect()
}

// ---------------------------------------------------------------------
// Genome types.
// ---------------------------------------------------------------------

impl Edit {
    /// Serializes to a tagged JSON object, e.g.
    /// `{"op": "delete", "kernel": 0, "target": 3}`.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut obj = serde_json::Map::new();
        match self {
            Edit::Delete { kernel, target } => {
                obj.insert("op", "delete");
                obj.insert("kernel", *kernel);
                obj.insert("target", u64::from(target.0));
            }
            Edit::Copy {
                kernel,
                source,
                before,
            } => {
                obj.insert("op", "copy");
                obj.insert("kernel", *kernel);
                obj.insert("source", u64::from(source.0));
                obj.insert("before", u64::from(before.0));
            }
            Edit::Move {
                kernel,
                source,
                before,
            } => {
                obj.insert("op", "move");
                obj.insert("kernel", *kernel);
                obj.insert("source", u64::from(source.0));
                obj.insert("before", u64::from(before.0));
            }
            Edit::Swap { kernel, a, b } => {
                obj.insert("op", "swap");
                obj.insert("kernel", *kernel);
                obj.insert("a", u64::from(a.0));
                obj.insert("b", u64::from(b.0));
            }
            Edit::Replace {
                kernel,
                target,
                source,
            } => {
                obj.insert("op", "replace");
                obj.insert("kernel", *kernel);
                obj.insert("target", u64::from(target.0));
                obj.insert("source", u64::from(source.0));
            }
            Edit::OperandReplace {
                kernel,
                target,
                arg,
                new,
            } => {
                obj.insert("op", "operand_replace");
                obj.insert("kernel", *kernel);
                obj.insert("target", u64::from(target.0));
                obj.insert("arg", *arg);
                obj.insert("new", new.to_json());
            }
            Edit::CondReplace { kernel, term, new } => {
                obj.insert("op", "cond_replace");
                obj.insert("kernel", *kernel);
                obj.insert("term", u64::from(term.0));
                obj.insert("new", new.to_json());
            }
        }
        Value::Object(obj)
    }

    /// Deserializes the [`to_json`](Self::to_json) representation.
    ///
    /// # Errors
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        const CTX: &str = "Edit";
        let op = want_str(v, "op", CTX)?;
        let kernel = want_usize(v, "kernel", CTX)?;
        let id = |name: &str| -> Result<InstId, String> { Ok(InstId(want_u32(v, name, CTX)?)) };
        let operand =
            |name: &str| -> Result<Operand, String> { Operand::from_json(want(v, name, CTX)?) };
        match op {
            "delete" => Ok(Edit::Delete {
                kernel,
                target: id("target")?,
            }),
            "copy" => Ok(Edit::Copy {
                kernel,
                source: id("source")?,
                before: id("before")?,
            }),
            "move" => Ok(Edit::Move {
                kernel,
                source: id("source")?,
                before: id("before")?,
            }),
            "swap" => Ok(Edit::Swap {
                kernel,
                a: id("a")?,
                b: id("b")?,
            }),
            "replace" => Ok(Edit::Replace {
                kernel,
                target: id("target")?,
                source: id("source")?,
            }),
            "operand_replace" => Ok(Edit::OperandReplace {
                kernel,
                target: id("target")?,
                arg: want_usize(v, "arg", CTX)?,
                new: operand("new")?,
            }),
            "cond_replace" => Ok(Edit::CondReplace {
                kernel,
                term: id("term")?,
                new: operand("new")?,
            }),
            other => Err(format!("Edit: unknown op {other:?}")),
        }
    }
}

impl Patch {
    /// Serializes to a JSON array of [`Edit::to_json`] objects.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Array(self.edits().iter().map(Edit::to_json).collect())
    }

    /// Deserializes the [`to_json`](Self::to_json) representation.
    ///
    /// # Errors
    /// Returns a message naming the malformed edit.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let arr = v.as_array().ok_or("Patch: expected an array")?;
        Ok(Patch::from_edits(
            arr.iter().map(Edit::from_json).collect::<Result<_, _>>()?,
        ))
    }
}

impl Individual {
    /// Serializes to `{"patch": [...], "fitness": <f64 or null>}`.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut obj = serde_json::Map::new();
        obj.insert("patch", self.patch.to_json());
        match self.fitness {
            Some(f) => obj.insert("fitness", f),
            None => obj.insert("fitness", Value::Null),
        };
        Value::Object(obj)
    }

    /// Deserializes the [`to_json`](Self::to_json) representation.
    ///
    /// # Errors
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        const CTX: &str = "Individual";
        let fitness = match want(v, "fitness", CTX)? {
            Value::Null => None,
            other => Some(
                other
                    .as_f64()
                    .ok_or_else(|| format!("{CTX}: fitness is not a number"))?,
            ),
        };
        Ok(Individual {
            patch: Patch::from_json(want(v, "patch", CTX)?)?,
            fitness,
        })
    }
}

// ---------------------------------------------------------------------
// History types.
// ---------------------------------------------------------------------

impl GenerationRecord {
    /// Serializes to a flat JSON object.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut obj = serde_json::Map::new();
        obj.insert("gen", self.gen);
        obj.insert("island", self.island);
        obj.insert("best_fitness", self.best_fitness);
        obj.insert("best_speedup", self.best_speedup);
        obj.insert("best_patch", self.best_patch.to_json());
        obj.insert("valid", self.valid);
        Value::Object(obj)
    }

    /// Deserializes the [`to_json`](Self::to_json) representation.
    ///
    /// # Errors
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        const CTX: &str = "GenerationRecord";
        Ok(GenerationRecord {
            gen: want_usize(v, "gen", CTX)?,
            island: want_usize(v, "island", CTX)?,
            best_fitness: want_f64(v, "best_fitness", CTX)?,
            best_speedup: want_f64(v, "best_speedup", CTX)?,
            best_patch: Patch::from_json(want(v, "best_patch", CTX)?)?,
            valid: want_usize(v, "valid", CTX)?,
        })
    }
}

impl MigrationEvent {
    /// Serializes to a flat JSON object.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut obj = serde_json::Map::new();
        obj.insert("gen", self.gen);
        obj.insert("from", self.from);
        obj.insert("to", self.to);
        obj.insert("fitness", self.fitness);
        obj.insert("patch", self.patch.to_json());
        Value::Object(obj)
    }

    /// Deserializes the [`to_json`](Self::to_json) representation.
    ///
    /// # Errors
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        const CTX: &str = "MigrationEvent";
        Ok(MigrationEvent {
            gen: want_usize(v, "gen", CTX)?,
            from: want_usize(v, "from", CTX)?,
            to: want_usize(v, "to", CTX)?,
            fitness: want_f64(v, "fitness", CTX)?,
            patch: Patch::from_json(want(v, "patch", CTX)?)?,
        })
    }
}

impl History {
    /// Serializes to a JSON object. The `first_seen_in_best` map is
    /// written as an array of `[edit, gen]` pairs sorted by
    /// `(gen, edit JSON)` so the byte stream is independent of
    /// `HashMap` iteration order (which varies across processes).
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut first: Vec<(usize, String, Value)> = self
            .first_seen_in_best
            .iter()
            .map(|(e, &g)| {
                let j = e.to_json();
                let key = j.to_string();
                (g, key, j)
            })
            .collect();
        first.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        let mut obj = serde_json::Map::new();
        obj.insert("baseline", self.baseline);
        obj.insert(
            "records",
            Value::Array(self.records.iter().map(GenerationRecord::to_json).collect()),
        );
        obj.insert(
            "first_seen_in_best",
            Value::Array(
                first
                    .into_iter()
                    .map(|(g, _, j)| Value::Array(vec![j, Value::from(g)]))
                    .collect(),
            ),
        );
        obj.insert(
            "migrations",
            Value::Array(
                self.migrations
                    .iter()
                    .map(MigrationEvent::to_json)
                    .collect(),
            ),
        );
        Value::Object(obj)
    }

    /// Deserializes the [`to_json`](Self::to_json) representation.
    ///
    /// # Errors
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        const CTX: &str = "History";
        let mut first_seen_in_best = std::collections::HashMap::new();
        for pair in want_array(v, "first_seen_in_best", CTX)? {
            let pair = pair.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                format!("{CTX}: first_seen_in_best entry is not an [edit, gen] pair")
            })?;
            let edit = Edit::from_json(&pair[0])?;
            let gen = usize::try_from(
                pair[1]
                    .as_u64()
                    .ok_or_else(|| format!("{CTX}: first_seen_in_best gen is not a u64"))?,
            )
            .map_err(|_| format!("{CTX}: first_seen_in_best gen exceeds usize"))?;
            first_seen_in_best.insert(edit, gen);
        }
        Ok(History {
            baseline: want_f64(v, "baseline", CTX)?,
            records: want_array(v, "records", CTX)?
                .iter()
                .map(GenerationRecord::from_json)
                .collect::<Result<_, _>>()?,
            first_seen_in_best,
            migrations: want_array(v, "migrations", CTX)?
                .iter()
                .map(MigrationEvent::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

// ---------------------------------------------------------------------
// Spec types.
// ---------------------------------------------------------------------

impl Topology {
    /// Serializes to `"ring"` or `"random"`.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::from(match self {
            Topology::Ring => "ring",
            Topology::Random => "random",
        })
    }

    /// Deserializes the [`to_json`](Self::to_json) representation.
    ///
    /// # Errors
    /// Returns a message naming the unknown variant.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        match v.as_str() {
            Some("ring") => Ok(Topology::Ring),
            Some("random") => Ok(Topology::Random),
            _ => Err(format!(
                "Topology: expected \"ring\" or \"random\", got {v}"
            )),
        }
    }
}

impl Objective {
    /// Serializes to the objective's `snake_case` name.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::from(match self {
            Objective::Cycles => "cycles",
            Objective::Error => "error",
            Objective::Instructions => "instructions",
            Objective::MemoryTraffic => "memory_traffic",
        })
    }

    /// Deserializes the [`to_json`](Self::to_json) representation.
    ///
    /// # Errors
    /// Returns a message naming the unknown variant.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        match v.as_str() {
            Some("cycles") => Ok(Objective::Cycles),
            Some("error") => Ok(Objective::Error),
            Some("instructions") => Ok(Objective::Instructions),
            Some("memory_traffic") => Ok(Objective::MemoryTraffic),
            _ => Err(format!("Objective: unknown variant {v}")),
        }
    }
}

impl Selection {
    /// Serializes to `"tournament"` or `"nsga2"`.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::from(match self {
            Selection::Tournament => "tournament",
            Selection::Nsga2 => "nsga2",
        })
    }

    /// Deserializes the [`to_json`](Self::to_json) representation.
    ///
    /// # Errors
    /// Returns a message naming the unknown variant.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        match v.as_str() {
            Some("tournament") => Ok(Selection::Tournament),
            Some("nsga2") => Ok(Selection::Nsga2),
            _ => Err(format!(
                "Selection: expected \"tournament\" or \"nsga2\", got {v}"
            )),
        }
    }
}

impl GaConfig {
    /// Serializes to a flat JSON object.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut obj = serde_json::Map::new();
        obj.insert("population", self.population);
        obj.insert("elitism", self.elitism);
        obj.insert("crossover_p", self.crossover_p);
        obj.insert("mutation_p", self.mutation_p);
        obj.insert("generations", self.generations);
        obj.insert("tournament", self.tournament);
        obj.insert("seed", self.seed);
        obj.insert("threads", self.threads);
        obj.insert("max_patch_len", self.max_patch_len);
        Value::Object(obj)
    }

    /// Deserializes the [`to_json`](Self::to_json) representation.
    ///
    /// # Errors
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        const CTX: &str = "GaConfig";
        Ok(GaConfig {
            population: want_usize(v, "population", CTX)?,
            elitism: want_usize(v, "elitism", CTX)?,
            crossover_p: want_f64(v, "crossover_p", CTX)?,
            mutation_p: want_f64(v, "mutation_p", CTX)?,
            generations: want_usize(v, "generations", CTX)?,
            tournament: want_usize(v, "tournament", CTX)?,
            seed: want_u64(v, "seed", CTX)?,
            threads: want_usize(v, "threads", CTX)?,
            max_patch_len: want_usize(v, "max_patch_len", CTX)?,
        })
    }
}

impl MutationWeights {
    /// Serializes to a flat JSON object.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut obj = serde_json::Map::new();
        obj.insert("delete", self.delete);
        obj.insert("operand_replace", self.operand_replace);
        obj.insert("cond_replace", self.cond_replace);
        obj.insert("copy", self.copy);
        obj.insert("mov", self.mov);
        obj.insert("swap", self.swap);
        obj.insert("replace", self.replace);
        Value::Object(obj)
    }

    /// Deserializes the [`to_json`](Self::to_json) representation.
    ///
    /// # Errors
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        const CTX: &str = "MutationWeights";
        Ok(MutationWeights {
            delete: want_f64(v, "delete", CTX)?,
            operand_replace: want_f64(v, "operand_replace", CTX)?,
            cond_replace: want_f64(v, "cond_replace", CTX)?,
            copy: want_f64(v, "copy", CTX)?,
            mov: want_f64(v, "mov", CTX)?,
            swap: want_f64(v, "swap", CTX)?,
            replace: want_f64(v, "replace", CTX)?,
        })
    }
}

impl SearchSpec {
    /// Serializes to a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut obj = serde_json::Map::new();
        obj.insert("ga", self.ga.to_json());
        obj.insert("islands", self.islands);
        obj.insert("migration_interval", self.migration_interval);
        obj.insert("emigrants", self.emigrants);
        obj.insert("topology", self.topology.to_json());
        obj.insert(
            "objectives",
            Value::Array(self.objectives.iter().map(Objective::to_json).collect()),
        );
        obj.insert("selection", self.selection.to_json());
        // Emitted only when a scheduler actually runs: uniform specs
        // keep the exact pre-adapt byte stream (and old checkpoints,
        // which lack the key, deserialize as uniform below).
        if self.adapt != AdaptPolicy::Uniform {
            obj.insert("adapt", self.adapt.to_json());
        }
        Value::Object(obj)
    }

    /// Deserializes the [`to_json`](Self::to_json) representation.
    ///
    /// # Errors
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        const CTX: &str = "SearchSpec";
        Ok(SearchSpec {
            ga: GaConfig::from_json(want(v, "ga", CTX)?)?,
            islands: want_usize(v, "islands", CTX)?,
            migration_interval: want_usize(v, "migration_interval", CTX)?,
            emigrants: want_usize(v, "emigrants", CTX)?,
            topology: Topology::from_json(want(v, "topology", CTX)?)?,
            objectives: want_array(v, "objectives", CTX)?
                .iter()
                .map(Objective::from_json)
                .collect::<Result<_, _>>()?,
            selection: Selection::from_json(want(v, "selection", CTX)?)?,
            adapt: match v.get("adapt") {
                None => AdaptPolicy::Uniform,
                Some(a) => AdaptPolicy::from_json(a)?,
            },
        })
    }
}

// ---------------------------------------------------------------------
// Archive and result types.
// ---------------------------------------------------------------------

impl ParetoPoint {
    /// Serializes to a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut obj = serde_json::Map::new();
        obj.insert("patch", self.patch.to_json());
        obj.insert("fitness", self.fitness);
        obj.insert(
            "scores",
            Value::Array(self.scores.iter().map(|&s| Value::from(s)).collect()),
        );
        obj.insert("gen", self.gen);
        obj.insert("island", self.island);
        obj.insert("slot", self.slot);
        Value::Object(obj)
    }

    /// Deserializes the [`to_json`](Self::to_json) representation.
    ///
    /// # Errors
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        const CTX: &str = "ParetoPoint";
        Ok(ParetoPoint {
            patch: Patch::from_json(want(v, "patch", CTX)?)?,
            fitness: want_f64(v, "fitness", CTX)?,
            scores: f64_array(v, "scores", CTX)?,
            gen: want_usize(v, "gen", CTX)?,
            island: want_usize(v, "island", CTX)?,
            slot: want_usize(v, "slot", CTX)?,
        })
    }
}

impl SearchResult {
    /// Serializes to a JSON object. Byte-deterministic: two processes
    /// producing equal results emit identical strings (the harness
    /// checkpoint tests compare them directly).
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut obj = serde_json::Map::new();
        obj.insert("best", self.best.to_json());
        obj.insert("speedup", self.speedup);
        obj.insert("history", self.history.to_json());
        obj.insert(
            "islands",
            Value::Array(self.islands.iter().map(History::to_json).collect()),
        );
        obj.insert("evals", self.evals);
        obj.insert("cache_hits", self.cache_hits);
        obj.insert("instructions", self.instructions);
        obj.insert(
            "objectives",
            Value::Array(self.objectives.iter().map(Objective::to_json).collect()),
        );
        obj.insert(
            "pareto",
            Value::Array(self.pareto.iter().map(ParetoPoint::to_json).collect()),
        );
        Value::Object(obj)
    }

    /// Deserializes the [`to_json`](Self::to_json) representation.
    ///
    /// # Errors
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        const CTX: &str = "SearchResult";
        Ok(SearchResult {
            best: Individual::from_json(want(v, "best", CTX)?)?,
            speedup: want_f64(v, "speedup", CTX)?,
            history: History::from_json(want(v, "history", CTX)?)?,
            islands: want_array(v, "islands", CTX)?
                .iter()
                .map(History::from_json)
                .collect::<Result<_, _>>()?,
            evals: want_usize(v, "evals", CTX)?,
            cache_hits: want_usize(v, "cache_hits", CTX)?,
            instructions: want_u64(v, "instructions", CTX)?,
            objectives: want_array(v, "objectives", CTX)?
                .iter()
                .map(Objective::from_json)
                .collect::<Result<_, _>>()?,
            pareto: want_array(v, "pareto", CTX)?
                .iter()
                .map(ParetoPoint::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

// ---------------------------------------------------------------------
// The state envelope.
// ---------------------------------------------------------------------

impl IslandSnapshot {
    /// Serializes to a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut obj = serde_json::Map::new();
        obj.insert("rng", self.rng.to_json());
        obj.insert(
            "population",
            Value::Array(self.population.iter().map(Individual::to_json).collect()),
        );
        obj.insert(
            "scores",
            Value::Array(
                self.scores
                    .iter()
                    .map(|s| Value::Array(s.iter().map(|&x| Value::from(x)).collect()))
                    .collect(),
            ),
        );
        obj.insert(
            "ranked",
            Value::Array(self.ranked.iter().map(|&i| Value::from(i)).collect()),
        );
        obj.insert("history", self.history.to_json());
        obj.insert("best", self.best.to_json());
        // Present only for adaptive runs: uniform snapshots keep the
        // exact pre-adapt byte stream.
        if let Some(adapt) = &self.adapt {
            obj.insert("adapt", adapt.to_json());
        }
        Value::Object(obj)
    }

    /// Deserializes the [`to_json`](Self::to_json) representation.
    ///
    /// # Errors
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        const CTX: &str = "IslandSnapshot";
        let scores = want_array(v, "scores", CTX)?
            .iter()
            .map(|s| {
                s.as_array()
                    .ok_or_else(|| format!("{CTX}: scores element is not an array"))?
                    .iter()
                    .map(|x| {
                        x.as_f64()
                            .ok_or_else(|| format!("{CTX}: score is not a number"))
                    })
                    .collect::<Result<Vec<f64>, String>>()
            })
            .collect::<Result<_, _>>()?;
        let ranked = want_array(v, "ranked", CTX)?
            .iter()
            .map(|x| {
                x.as_u64()
                    .and_then(|u| usize::try_from(u).ok())
                    .ok_or_else(|| format!("{CTX}: ranked index is not a usize"))
            })
            .collect::<Result<_, _>>()?;
        Ok(IslandSnapshot {
            rng: StreamState::from_json(want(v, "rng", CTX)?)?,
            population: want_array(v, "population", CTX)?
                .iter()
                .map(Individual::from_json)
                .collect::<Result<_, _>>()?,
            scores,
            ranked,
            history: History::from_json(want(v, "history", CTX)?)?,
            best: Individual::from_json(want(v, "best", CTX)?)?,
            adapt: match v.get("adapt") {
                None => None,
                Some(a) => Some(AdaptSnapshot::from_json(a)?),
            },
        })
    }
}

impl SearchState {
    /// Serializes the full checkpoint, wrapped in a
    /// `"format": `[`STATE_FORMAT`] envelope.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut obj = serde_json::Map::new();
        obj.insert("format", STATE_FORMAT);
        obj.insert("workload", self.workload.clone());
        obj.insert("spec", self.spec.to_json());
        obj.insert("weights", self.weights.to_json());
        obj.insert("gen", self.gen);
        obj.insert("baseline", self.baseline);
        obj.insert(
            "islands",
            Value::Array(self.islands.iter().map(IslandSnapshot::to_json).collect()),
        );
        obj.insert("mig_rng", self.mig_rng.to_json());
        obj.insert("history", self.history.to_json());
        obj.insert("best", self.best.to_json());
        obj.insert(
            "pareto",
            Value::Array(self.pareto.iter().map(ParetoPoint::to_json).collect()),
        );
        obj.insert(
            "pareto_seen",
            Value::Array(self.pareto_seen.iter().map(|&h| Value::from(h)).collect()),
        );
        obj.insert("evaluator", self.evaluator.to_json());
        Value::Object(obj)
    }

    /// Deserializes a checkpoint produced by
    /// [`to_json`](Self::to_json).
    ///
    /// # Errors
    /// Returns a message naming the missing or malformed field, or an
    /// unsupported format version.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        const CTX: &str = "SearchState";
        let format = want_u64(v, "format", CTX)?;
        if format != STATE_FORMAT {
            return Err(format!(
                "{CTX}: unsupported checkpoint format {format} (this build reads {STATE_FORMAT})"
            ));
        }
        let pareto_seen = want_array(v, "pareto_seen", CTX)?
            .iter()
            .map(|x| {
                x.as_u64()
                    .ok_or_else(|| format!("{CTX}: pareto_seen hash is not a u64"))
            })
            .collect::<Result<_, _>>()?;
        Ok(SearchState {
            workload: want_str(v, "workload", CTX)?.to_string(),
            spec: SearchSpec::from_json(want(v, "spec", CTX)?)?,
            weights: MutationWeights::from_json(want(v, "weights", CTX)?)?,
            gen: want_usize(v, "gen", CTX)?,
            baseline: want_f64(v, "baseline", CTX)?,
            islands: want_array(v, "islands", CTX)?
                .iter()
                .map(IslandSnapshot::from_json)
                .collect::<Result<_, _>>()?,
            mig_rng: StreamState::from_json(want(v, "mig_rng", CTX)?)?,
            history: History::from_json(want(v, "history", CTX)?)?,
            best: Individual::from_json(want(v, "best", CTX)?)?,
            pareto: want_array(v, "pareto", CTX)?
                .iter()
                .map(ParetoPoint::from_json)
                .collect::<Result<_, _>>()?,
            pareto_seen,
            evaluator: EvaluatorSnapshot::from_json(want(v, "evaluator", CTX)?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::EvalOutcome;
    use gevo_ir::Special;

    fn sample_edits() -> Vec<Edit> {
        vec![
            Edit::Delete {
                kernel: 0,
                target: InstId(3),
            },
            Edit::Copy {
                kernel: 1,
                source: InstId(4),
                before: InstId(9),
            },
            Edit::Move {
                kernel: 0,
                source: InstId(2),
                before: InstId(1),
            },
            Edit::Swap {
                kernel: 2,
                a: InstId(5),
                b: InstId(6),
            },
            Edit::Replace {
                kernel: 0,
                target: InstId(7),
                source: InstId(8),
            },
            Edit::OperandReplace {
                kernel: 0,
                target: InstId(1),
                arg: 1,
                new: Operand::ImmI32(-7),
            },
            Edit::CondReplace {
                kernel: 0,
                term: InstId(10),
                new: Operand::Special(Special::LaneId),
            },
        ]
    }

    fn reparse(v: &Value) -> Value {
        serde_json::from_str(&v.to_string()).expect("self-produced JSON parses")
    }

    #[test]
    fn edit_json_round_trips_every_variant() {
        for e in sample_edits() {
            let v = reparse(&e.to_json());
            assert_eq!(Edit::from_json(&v).unwrap(), e);
        }
    }

    #[test]
    fn edit_json_rejects_malformed() {
        for bad in [
            "{}",
            r#"{"op":"teleport","kernel":0}"#,
            r#"{"op":"delete","kernel":0}"#,
            r#"{"op":"delete","target":1}"#,
        ] {
            let v = serde_json::from_str(bad).unwrap();
            assert!(Edit::from_json(&v).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn history_serializes_first_seen_sorted() {
        let mut h = History {
            baseline: 1000.0,
            records: vec![GenerationRecord {
                gen: 0,
                island: 1,
                best_fitness: 900.0,
                best_speedup: 1000.0 / 900.0,
                best_patch: Patch::from_edits(vec![sample_edits()[0]]),
                valid: 7,
            }],
            first_seen_in_best: std::collections::HashMap::new(),
            migrations: vec![MigrationEvent {
                gen: 4,
                from: 0,
                to: 1,
                fitness: 950.0,
                patch: Patch::empty(),
            }],
        };
        for (i, e) in sample_edits().into_iter().enumerate() {
            h.first_seen_in_best.insert(e, i / 2);
        }
        let text = h.to_json().to_string();
        let round = History::from_json(&reparse(&h.to_json())).unwrap();
        assert_eq!(round, h);
        // Deterministic bytes regardless of HashMap iteration order.
        assert_eq!(round.to_json().to_string(), text);
        let entries = h.to_json();
        let entries = entries
            .get("first_seen_in_best")
            .unwrap()
            .as_array()
            .unwrap();
        let gens: Vec<u64> = entries
            .iter()
            .map(|p| p.as_array().unwrap()[1].as_u64().unwrap())
            .collect();
        let mut sorted = gens.clone();
        sorted.sort_unstable();
        assert_eq!(gens, sorted, "entries must be sorted by generation first");
    }

    #[test]
    fn spec_json_round_trips() {
        let spec = SearchSpec {
            ga: GaConfig {
                population: 24,
                elitism: 3,
                crossover_p: 0.85,
                mutation_p: 0.6,
                generations: 17,
                tournament: 4,
                seed: 0xDEAD_BEEF_CAFE,
                threads: 2,
                max_patch_len: 9,
            },
            islands: 4,
            migration_interval: 3,
            emigrants: 2,
            topology: Topology::Random,
            objectives: vec![
                Objective::Cycles,
                Objective::Error,
                Objective::MemoryTraffic,
            ],
            selection: Selection::Nsga2,
            adapt: AdaptPolicy::Ucb1,
        };
        let v = reparse(&spec.to_json());
        assert_eq!(SearchSpec::from_json(&v).unwrap(), spec);
        // The uniform policy is elided from the byte stream entirely
        // (old checkpoints lack the key and deserialize as uniform).
        let uniform = SearchSpec::default();
        assert!(!uniform.to_json().to_string().contains("adapt"));
        let v = reparse(&uniform.to_json());
        assert_eq!(SearchSpec::from_json(&v).unwrap(), uniform);
    }

    #[test]
    fn search_state_round_trips_and_pins_format() {
        let launch_stats = gevo_gpu::LaunchStats::default();
        let state = SearchState {
            workload: "toy".to_string(),
            spec: SearchSpec::default(),
            weights: MutationWeights::default(),
            gen: 5,
            baseline: 1234.5,
            islands: vec![IslandSnapshot {
                rng: StreamState {
                    seed: [7; 32],
                    word_pos: 42,
                },
                population: vec![Individual {
                    patch: Patch::from_edits(sample_edits()),
                    fitness: Some(999.25),
                }],
                scores: vec![vec![999.25, 0.5]],
                ranked: vec![0],
                history: History {
                    baseline: 1234.5,
                    records: Vec::new(),
                    first_seen_in_best: std::collections::HashMap::new(),
                    migrations: Vec::new(),
                },
                best: Individual {
                    patch: Patch::empty(),
                    fitness: Some(1234.5),
                },
                adapt: None,
            }],
            mig_rng: StreamState {
                seed: [9; 32],
                word_pos: 0,
            },
            history: History {
                baseline: 1234.5,
                records: Vec::new(),
                first_seen_in_best: std::collections::HashMap::new(),
                migrations: Vec::new(),
            },
            best: Individual {
                patch: Patch::empty(),
                fitness: Some(1234.5),
            },
            pareto: vec![ParetoPoint {
                patch: Patch::from_edits(vec![sample_edits()[0]]),
                fitness: 999.25,
                scores: vec![999.25, 0.5],
                gen: 2,
                island: 0,
                slot: 3,
            }],
            pareto_seen: vec![1, 17, 0xFFFF_FFFF_FFFF_FFFF],
            evaluator: crate::fitness::EvaluatorSnapshot {
                eval_seed: 11,
                evals: 3,
                cache_hits: 2,
                instructions: 456,
                outcomes: vec![
                    (5, EvalOutcome::fail("broken")),
                    (9, EvalOutcome::pass(999.25, launch_stats)),
                ],
            },
        };
        let v = reparse(&state.to_json());
        assert_eq!(SearchState::from_json(&v).unwrap(), state);

        // A future format is refused, not misread.
        let mut bumped = state.to_json();
        if let Value::Object(obj) = &mut bumped {
            obj.insert("format", 2u64);
        }
        let err = SearchState::from_json(&bumped).unwrap_err();
        assert!(err.contains("unsupported checkpoint format"), "{err}");
    }

    #[test]
    fn search_result_round_trips() {
        let result = SearchResult {
            best: Individual {
                patch: Patch::from_edits(vec![sample_edits()[0]]),
                fitness: Some(800.0),
            },
            speedup: 1.25,
            history: History {
                baseline: 1000.0,
                records: Vec::new(),
                first_seen_in_best: std::collections::HashMap::new(),
                migrations: Vec::new(),
            },
            islands: vec![History {
                baseline: 1000.0,
                records: Vec::new(),
                first_seen_in_best: std::collections::HashMap::new(),
                migrations: Vec::new(),
            }],
            evals: 100,
            cache_hits: 40,
            instructions: 123_456,
            objectives: vec![Objective::Cycles],
            pareto: Vec::new(),
        };
        let v = reparse(&result.to_json());
        assert_eq!(SearchResult::from_json(&v).unwrap(), result);
    }
}
