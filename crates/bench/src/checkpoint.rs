//! Checkpoint/resume plumbing for every GA-driven harness binary.
//!
//! The knobs live here and nowhere else (the same single-point rule as
//! [`crate::harness_spec`]): any binary that runs its search through
//! [`crate::run_search`] understands
//!
//! | knob | meaning |
//! |---|---|
//! | `--checkpoint <path>` / `GEVO_CHECKPOINT` | write checkpoints here |
//! | `--resume <path>` | resume from this checkpoint file |
//! | `GEVO_CHECKPOINT_EVERY` | generations between checkpoints (default 5) |
//! | `GEVO_STOP_AFTER` | run k generations, checkpoint, exit with code 3 |
//!
//! A path ending in `.json` is used verbatim (single-search binaries);
//! anything else is treated as a directory and each search writes
//! `<workload-slug>-s<seed>-i<islands>.ckpt.json` inside it, so sweep
//! binaries (table1, fig4 — many searches per process) cannot collide.
//! When no explicit `--resume` is given but the checkpoint file already
//! exists, the run resumes from it — which is exactly the kill/restart
//! recovery story: re-running the same command line continues where the
//! killed process left off.
//!
//! Checkpoint files are written atomically (temp file + rename in the
//! same directory), so a kill mid-write leaves the previous checkpoint
//! intact, never a torn one.
//!
//! ## Integrity and rollback (DESIGN.md §3.9)
//!
//! Atomic rename keeps a *kill* from tearing a file, but not a bad
//! disk, a truncating copy, or a stray editor from corrupting one.
//! Every checkpoint is therefore sealed with a CRC-32 footer line
//! ([`seal`]/[`unseal`]), and each write first rotates the existing
//! file to `<file>.1` ([`write_checkpoint`]). On read,
//! [`load_state`] demands a valid footer *and* a decodable
//! [`SearchState`]; [`load_state_with_rollback`] falls back to the
//! rotated `.1` snapshot when the primary fails either check, so a
//! corrupted latest checkpoint costs at most one checkpoint interval
//! of work instead of the whole run. The footer is mandatory — a file
//! without one is treated as corrupt, because accepting it would let
//! a truncation that happens to end on the JSON boundary pass
//! silently.

use gevo_engine::{
    AdaptReport, EvalStats, Search, SearchObserver, SearchResult, SearchSpec, SearchState,
    StepStatus, Workload,
};
use std::path::{Path, PathBuf};

/// Exit code for a run interrupted by `GEVO_STOP_AFTER` — distinct from
/// success (0) and failure (1) so harness tests can assert the
/// interruption actually happened.
pub const STOPPED_EXIT_CODE: i32 = 3;

/// The checkpoint/resume configuration in force (CLI + env).
#[derive(Debug, Clone, Default)]
pub struct CheckpointKnobs {
    /// Where to write checkpoints (`--checkpoint` / `GEVO_CHECKPOINT`).
    pub path: Option<PathBuf>,
    /// Explicit checkpoint to resume from (`--resume`).
    pub resume: Option<PathBuf>,
    /// Generations between checkpoints (`GEVO_CHECKPOINT_EVERY`).
    pub every: usize,
    /// Stop (checkpoint + exit [`STOPPED_EXIT_CODE`]) after this many
    /// generations (`GEVO_STOP_AFTER`).
    pub stop_after: Option<usize>,
}

fn arg_value(flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
    }
    None
}

/// Reads the checkpoint knobs from the command line and environment.
#[must_use]
pub fn checkpoint_knobs() -> CheckpointKnobs {
    let path = arg_value("--checkpoint")
        .or_else(|| std::env::var("GEVO_CHECKPOINT").ok())
        .map(PathBuf::from);
    let resume = arg_value("--resume").map(PathBuf::from);
    let every = crate::env_usize("GEVO_CHECKPOINT_EVERY", 5).max(1);
    let stop_after = std::env::var("GEVO_STOP_AFTER")
        .ok()
        .and_then(|v| v.parse().ok());
    CheckpointKnobs {
        path,
        resume,
        every,
        stop_after,
    }
}

/// Lowercases a workload name into a filesystem-safe slug
/// (`adept-v0[P100-scaled]` → `adept-v0-p100-scaled`).
#[must_use]
pub fn workload_slug(name: &str) -> String {
    let mut slug: String = name
        .to_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    while slug.contains("--") {
        slug = slug.replace("--", "-");
    }
    slug.trim_matches('-').to_string()
}

/// Resolves a checkpoint base path for one search: a `.json` path is
/// used verbatim; anything else is a directory receiving a per-search
/// file named from the workload slug, seed and island count.
#[must_use]
pub fn resolve_checkpoint_path(base: &Path, workload: &str, spec: &SearchSpec) -> PathBuf {
    if base.extension().is_some_and(|e| e == "json") {
        return base.to_path_buf();
    }
    base.join(format!(
        "{}-s{}-i{}.ckpt.json",
        workload_slug(workload),
        spec.ga.seed,
        spec.islands
    ))
}

/// Writes `text` to `path` atomically: temp file in the same directory,
/// then rename. A crash mid-write cannot leave a torn file at `path`.
///
/// # Panics
/// Panics if the directory cannot be created or the write fails —
/// losing checkpoints silently would defeat their purpose.
pub fn write_atomic(path: &Path, text: &str) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
        }
    }
    let tmp = path.with_file_name(format!(
        "{}.tmp",
        path.file_name().map_or_else(
            || "checkpoint".to_string(),
            |n| n.to_string_lossy().into_owned()
        )
    ));
    std::fs::write(&tmp, text).unwrap_or_else(|e| panic!("cannot write {}: {e}", tmp.display()));
    std::fs::rename(&tmp, path)
        .unwrap_or_else(|e| panic!("cannot rename {} -> {}: {e}", tmp.display(), path.display()));
}

/// CRC-32 (IEEE 802.3, reflected) of `bytes` — the checksum sealing
/// every checkpoint file. Bitwise (no table): checkpoints are a few
/// hundred KB at most and written once per generation interval, so
/// simplicity beats throughput here.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The footer line tag. The body is one line of compact JSON (the
/// serializer emits no newlines), so the last occurrence of
/// `"\n" + tag` unambiguously splits body from footer.
const FOOTER_TAG: &str = "#gevo-ckpt-crc32:";

/// Seals checkpoint text with its CRC-32 footer line.
#[must_use]
pub fn seal(text: &str) -> String {
    format!("{text}\n{FOOTER_TAG}{:08x}\n", crc32(text.as_bytes()))
}

/// Verifies and strips the [`seal`] footer, returning the body.
///
/// # Errors
/// Returns a message when the footer is missing, malformed, truncated,
/// or the checksum does not match the body. A missing footer is an
/// error by design: a legacy/unsealed file is indistinguishable from a
/// sealed file truncated exactly at the body boundary.
pub fn unseal(raw: &str) -> Result<&str, String> {
    let marker = format!("\n{FOOTER_TAG}");
    let body_end = raw
        .rfind(&marker)
        .ok_or_else(|| "missing integrity footer".to_string())?;
    let body = &raw[..body_end];
    let footer = &raw[body_end + marker.len()..];
    let hex = footer
        .strip_suffix('\n')
        .ok_or_else(|| "truncated integrity footer".to_string())?;
    if hex.len() != 8 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("malformed integrity footer {hex:?}"));
    }
    let want = u32::from_str_radix(hex, 16).expect("checked hex digits");
    let got = crc32(body.as_bytes());
    if want == got {
        Ok(body)
    } else {
        Err(format!(
            "checksum mismatch: footer says {want:08x}, content is {got:08x}"
        ))
    }
}

/// The rotation target holding the previous good snapshot:
/// `run.ckpt.json` → `run.ckpt.json.1`.
#[must_use]
pub fn previous_path(path: &Path) -> PathBuf {
    let name = path.file_name().map_or_else(
        || "checkpoint".to_string(),
        |n| n.to_string_lossy().into_owned(),
    );
    path.with_file_name(format!("{name}.1"))
}

/// Writes a sealed checkpoint: rotates any existing file to
/// [`previous_path`] (same-directory rename, atomic), then writes the
/// CRC-sealed state atomically. After both steps at most one of the
/// two files can be damaged by any single fault, which is exactly what
/// [`load_state_with_rollback`] needs. Chaos fault injection
/// ([`crate::chaos`]) hooks in after the write to corrupt the fresh
/// file when a plan says so.
///
/// # Panics
/// Panics if the write fails — losing checkpoints silently would
/// defeat their purpose.
pub fn write_checkpoint(path: &Path, state: &SearchState) {
    if path.exists() {
        let prev = previous_path(path);
        std::fs::rename(path, &prev).unwrap_or_else(|e| {
            panic!(
                "cannot rotate {} -> {}: {e}",
                path.display(),
                prev.display()
            )
        });
    }
    write_atomic(path, &seal(&state.to_json().to_string()));
    crate::chaos::on_checkpoint_written(path);
}

/// Loads, verifies and decodes a sealed checkpoint file.
///
/// # Errors
/// Returns a message when the file cannot be read, fails its checksum,
/// or does not decode as a [`SearchState`].
pub fn load_state(path: &Path) -> Result<SearchState, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
    let body = unseal(&text).map_err(|e| format!("checkpoint {}: {e}", path.display()))?;
    let value = serde_json::from_str(body)
        .map_err(|e| format!("checkpoint {} is not valid JSON: {e}", path.display()))?;
    SearchState::from_json(&value).map_err(|e| format!("checkpoint {}: {e}", path.display()))
}

/// [`load_state`], falling back to the rotated previous snapshot when
/// the primary file is corrupt. Returns the state plus a rollback note
/// (`None` when the primary loaded cleanly) so callers can surface the
/// recovery instead of hiding it.
///
/// # Errors
/// Returns the combined failure when both snapshots are unreadable.
pub fn load_state_with_rollback(path: &Path) -> Result<(SearchState, Option<String>), String> {
    let primary_err = match load_state(path) {
        Ok(state) => return Ok((state, None)),
        Err(e) => e,
    };
    let prev = previous_path(path);
    match load_state(&prev) {
        Ok(state) => Ok((
            state,
            Some(format!(
                "{primary_err}; rolled back to previous snapshot {}",
                prev.display()
            )),
        )),
        Err(fallback_err) => Err(format!("{primary_err}; rollback failed: {fallback_err}")),
    }
}

/// Drives a configured [`Search`] session to completion, writing a
/// checkpoint to `ckpt` every `every` generations. When `stop_after` is
/// hit, the state is checkpointed and the process exits with
/// [`STOPPED_EXIT_CODE`] — the deterministic stand-in for a kill that
/// the recovery tests use.
///
/// Returns the result plus the evaluator's own counters and the
/// adaptive scheduler's merged report, both of which are deliberately
/// absent from the result (and the report from checkpoints' identity
/// contract): cache hit rates, delta-patch counts, lowering-pass
/// counters and operator-credit tallies only describe how this process
/// computed the trajectory, not the trajectory itself.
///
/// # Panics
/// Panics if a due checkpoint cannot be written.
#[must_use]
pub fn drive_search(
    mut search: Search<'_>,
    ckpt: Option<&Path>,
    every: usize,
    stop_after: Option<usize>,
) -> (SearchResult, EvalStats, Option<AdaptReport>) {
    let every = every.max(1);
    while let StepStatus::Advanced { gen } = search.step() {
        let completed = gen + 1;
        let due = ckpt.is_some() && completed % every == 0;
        let stopping = stop_after == Some(completed);
        if due || (stopping && ckpt.is_some()) {
            let state = search.checkpoint();
            let path = ckpt.expect("checked above");
            write_checkpoint(path, &state);
        }
        if stopping {
            std::process::exit(STOPPED_EXIT_CODE);
        }
        // Chaos worker panics fire here, at the step boundary *after*
        // any due checkpoint — outside the evaluation isolation, so a
        // rerun resumes from the checkpoint and replays the identical
        // trajectory (the recovery invariant chaos_check asserts).
        crate::chaos::maybe_worker_panic(search.eval_stats().evals);
    }
    let stats = search.eval_stats();
    let adapt = search.adapt_report();
    (search.into_result(), stats, adapt)
}

/// The checkpoint-aware search runner behind [`crate::run_search`]:
/// resolves this search's checkpoint file, resumes from `--resume` (or
/// from the checkpoint file itself when it already exists), attaches
/// the observer, and drives the session with [`drive_search`].
///
/// # Panics
/// Panics if an explicitly requested resume file is unreadable or
/// undecodable (continuing from scratch would silently discard paid-for
/// generations), or if a checkpoint write fails.
#[must_use]
pub fn run_search_with(
    w: &dyn Workload,
    spec: &SearchSpec,
    knobs: &CheckpointKnobs,
    observer: Option<&mut dyn SearchObserver>,
) -> (SearchResult, EvalStats, Option<AdaptReport>) {
    let ckpt = knobs
        .path
        .as_ref()
        .map(|base| resolve_checkpoint_path(base, w.name(), spec));
    let resume_from = knobs
        .resume
        .clone()
        .or_else(|| ckpt.clone().filter(|p| p.exists()));
    let state = resume_from.map(|p| match load_state_with_rollback(&p) {
        Ok((state, note)) => {
            if let Some(note) = note {
                eprintln!("gevo: {note}");
            }
            state
        }
        Err(e) => panic!("{e}"),
    });
    let mut search = if let Some(state) = &state {
        Search::resume(w, state)
    } else {
        let mut fresh = Search::from_spec(w, spec.clone());
        // GEVO_MUT_WEIGHTS applies to fresh sessions only: resumed
        // states already carry the weights their run started with.
        if let Some(weights) = crate::mut_weights_knob() {
            fresh = fresh.weights(weights);
        }
        fresh
    };
    if let Some(obs) = observer {
        search = search.observer(obs);
    }
    drive_search(search, ckpt.as_deref(), knobs.every, knobs.stop_after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gevo_engine::GaConfig;

    #[test]
    fn slugs_are_filesystem_safe() {
        assert_eq!(
            workload_slug("adept-v0[P100-scaled]"),
            "adept-v0-p100-scaled"
        );
        assert_eq!(workload_slug("simcov[V100]"), "simcov-v100");
    }

    #[test]
    fn json_suffix_is_verbatim_everything_else_a_directory() {
        let spec = SearchSpec {
            ga: GaConfig {
                seed: 9,
                ..GaConfig::scaled()
            },
            islands: 4,
            ..SearchSpec::default()
        };
        let verbatim = resolve_checkpoint_path(Path::new("/tmp/x/run.json"), "w", &spec);
        assert_eq!(verbatim, Path::new("/tmp/x/run.json"));
        let dir = resolve_checkpoint_path(Path::new("/tmp/ckpts"), "adept-v0[P100]", &spec);
        assert_eq!(dir, Path::new("/tmp/ckpts/adept-v0-p100-s9-i4.ckpt.json"));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn seal_round_trips_and_detects_damage() {
        let sealed = seal("{\"format\":1}");
        assert_eq!(unseal(&sealed).unwrap(), "{\"format\":1}");
        // Flip one body byte: checksum must catch it.
        let mut bytes = sealed.clone().into_bytes();
        bytes[2] ^= 0x01;
        let flipped = String::from_utf8(bytes).unwrap();
        assert!(unseal(&flipped).unwrap_err().contains("checksum mismatch"));
        // Truncations anywhere are rejected (footer missing/truncated
        // or checksum mismatch — never a silent accept).
        for cut in 0..sealed.len() {
            assert!(unseal(&sealed[..cut]).is_err(), "cut at {cut} accepted");
        }
        // A footer-less legacy file is corrupt by definition.
        assert!(unseal("{\"format\":1}").unwrap_err().contains("missing"));
    }

    #[test]
    fn previous_path_appends_dot_one() {
        assert_eq!(
            previous_path(Path::new("/tmp/a/run.ckpt.json")),
            Path::new("/tmp/a/run.ckpt.json.1")
        );
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join("gevo-ckpt-test");
        let path = dir.join("state.json");
        write_atomic(&path, "one");
        write_atomic(&path, "two");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "two");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not survive");
        std::fs::remove_dir_all(&dir).ok();
    }
}
