//! ADEPT-V0: the original, pre-hand-tuning GPU port (paper §III-B).
//!
//! One forward kernel, one alignment per thread block, one scoring-matrix
//! column per thread (paper Fig. 3), anti-diagonal wavefront, neighbor
//! exchange through shared memory only. It carries the inefficiencies the
//! paper's analysis localizes:
//!
//! * **the §VI-C bottleneck**: every anti-diagonal iteration, *every*
//!   thread redundantly re-initializes the whole shared exchange region
//!   (`init_sweeps` passes), followed by an extra barrier — "GPU threads
//!   block each other to initialize the same memory region over and over,
//!   creating the significant performance bottleneck";
//! * a loop-invariant reload of the thread's `b`-base from global memory
//!   every iteration;
//! * a dead diagnostic store to a scratch buffer every iteration.
//!
//! Each inefficiency site's [`InstId`]s are reported in [`V0Sites`] so
//! harnesses can construct the curated optimization edits (DESIGN.md
//! §4.5) and check what the GA discovered against them.

use gevo_ir::{AddrSpace, CmpPred, InstId, Kernel, KernelBuilder, MemTy, Operand, Special};

use crate::sw_cpu::score;

/// Annotated inefficiency sites in the V0 kernel.
#[derive(Debug, Clone, Copy)]
pub struct V0Sites {
    /// Terminator of the redundant init loop's header: replacing the
    /// condition with `false` skips the §VI-C bottleneck entirely.
    pub init_branch: InstId,
    /// The init loop's shared store (partial fix: delete just the store).
    pub init_store: InstId,
    /// The barrier that follows the init loop (deletable once the init is
    /// gone; deleting it *alone* corrupts the exchange protocol).
    pub init_sync: InstId,
    /// Loop-invariant reload of the thread's `b` base.
    pub reload_sb: InstId,
    /// Dead diagnostic store.
    pub dead_store: InstId,
}

/// Shared-memory word layout for a block of `t` threads:
/// `[0,t)` exchange H, `[t,2t)` exchange H−2, `[2t,3t)` reduction scores,
/// `[3t,4t)` reduction rows.
pub(crate) const V0_ARRAYS: u32 = 4;

/// Builds the V0 forward kernel for blocks of `block_threads` threads.
///
/// `init_sweeps` controls how many times the redundant init loop sweeps
/// the exchange region per iteration (the paper's "over and over").
#[must_use]
pub fn build_v0(block_threads: u32, init_sweeps: u32) -> (Kernel, V0Sites) {
    let t = i64::from(block_threads);
    let mut b = KernelBuilder::new("adept_v0_fwd");
    b.shared_bytes(V0_ARRAYS * block_threads * 4);

    let p_seq_a = b.param_ptr("seq_a", AddrSpace::Global);
    let p_seq_b = b.param_ptr("seq_b", AddrSpace::Global);
    let p_offs_a = b.param_ptr("offs_a", AddrSpace::Global);
    let p_offs_b = b.param_ptr("offs_b", AddrSpace::Global);
    let p_lens_a = b.param_ptr("lens_a", AddrSpace::Global);
    let p_lens_b = b.param_ptr("lens_b", AddrSpace::Global);
    let p_out = b.param_ptr("out", AddrSpace::Global);
    let p_scratch = b.param_ptr("scratch", AddrSpace::Global);

    b.loc("entry");
    let tid = b.special_i32(Special::ThreadId);
    let bid = b.special_i32(Special::BlockId);
    let load_meta = |b: &mut KernelBuilder, ptr: u16, idx: Operand| {
        let addr = b.index_addr(Operand::Param(ptr), idx, 4);
        b.load_global_i32(addr.into())
    };
    let off_a = load_meta(&mut b, p_offs_a, bid.into());
    let off_b = load_meta(&mut b, p_offs_b, bid.into());
    let m = load_meta(&mut b, p_lens_a, bid.into());
    let n = load_meta(&mut b, p_lens_b, bid.into());
    let is_valid = b.icmp_lt(tid.into(), n.into());

    // Clamped per-thread base of `b` (threads ≥ n read a dummy base).
    let n_minus1 = b.sub(n.into(), Operand::ImmI32(1));
    let nm1_clamped = b.max(n_minus1.into(), Operand::ImmI32(0));
    let jj = b.min(tid.into(), nm1_clamped.into());
    let sb_idx = b.add(off_b.into(), jj.into());
    let sb_addr = b.index_addr(Operand::Param(p_seq_b), sb_idx.into(), 4);
    let sb = b.load_global_i32(sb_addr.into());

    // DP state.
    let prev_h = b.mov(Operand::ImmI32(0));
    let prev_hh = b.mov(Operand::ImmI32(0));
    let best_s = b.mov(Operand::ImmI32(0));
    let best_i = b.mov(Operand::ImmI32(-1));
    let diag = b.mov(Operand::ImmI32(0));
    let m_plus_n = b.add(m.into(), n.into());
    let total = b.sub(m_plus_n.into(), Operand::ImmI32(1));

    // Shared addresses (precomputed; word stride t per array).
    let ex_h_addr = b.index_addr(Operand::ImmI64(0), tid.into(), 4);
    let ex_hh_addr = b.index_addr(Operand::ImmI64(t * 4), tid.into(), 4);
    let tid_m1 = b.sub(tid.into(), Operand::ImmI32(1));
    let nbi = b.max(tid_m1.into(), Operand::ImmI32(0));
    let nb_h_addr = b.index_addr(Operand::ImmI64(0), nbi.into(), 4);
    let nb_hh_addr = b.index_addr(Operand::ImmI64(t * 4), nbi.into(), 4);
    let red_s_addr = b.index_addr(Operand::ImmI64(2 * t * 4), tid.into(), 4);
    let red_i_addr = b.index_addr(Operand::ImmI64(3 * t * 4), tid.into(), 4);
    let gtid = b.global_thread_id();
    let scratch_addr = b.index_addr(Operand::Param(p_scratch), gtid.into(), 4);
    let init_w = b.fresh_reg(gevo_ir::Ty::I32);

    let diag_hdr = b.new_block("diag_hdr");
    let dbody = b.new_block("dbody");
    let init_hdr = b.new_block("init_hdr");
    let init_body = b.new_block("init_body");
    let init_done = b.new_block("init_done");
    let comp = b.new_block("comp");
    let skip = b.new_block("skip");
    let after = b.new_block("after");
    let red_start = b.new_block("red_start");
    let red_hdr = b.new_block("red_hdr");
    let red_body = b.new_block("red_body");
    let red_done = b.new_block("red_done");
    let done = b.new_block("done");

    b.br(diag_hdr);

    // ---- wavefront loop ------------------------------------------------
    b.switch_to(diag_hdr);
    let more = b.icmp_lt(diag.into(), total.into());
    b.cond_br(more.into(), dbody, after);

    b.switch_to(dbody);
    b.loc("v0_init_loop");
    b.mov_to(init_w, Operand::ImmI32(0));
    b.br(init_hdr);

    b.switch_to(init_hdr);
    #[allow(clippy::cast_possible_wrap)]
    let init_bound = Operand::ImmI32((2 * block_threads * init_sweeps) as i32);
    let init_more = b.icmp_lt(init_w.into(), init_bound);
    let init_branch = b.peek_next_id();
    b.cond_br(init_more.into(), init_body, init_done);

    b.switch_to(init_body);
    // Redundant zeroing of the whole exchange region by *every* thread,
    // with a modulo in the hot loop for good measure (§VI-C: "vastly
    // inefficient").
    #[allow(clippy::cast_possible_wrap)]
    let wrap = Operand::ImmI32((2 * block_threads) as i32);
    let wi = b.rem(init_w.into(), wrap);
    let waddr = b.index_addr(Operand::ImmI64(0), wi.into(), 4);
    let init_store = b.peek_next_id();
    b.store_shared_i32(waddr.into(), Operand::ImmI32(0));
    b.ibin_to(
        init_w,
        gevo_ir::IntBinOp::Add,
        init_w.into(),
        Operand::ImmI32(1),
    );
    b.br(init_hdr);

    b.switch_to(init_done);
    let init_sync = b.peek_next_id();
    b.sync_threads();

    b.loc("v0_publish");
    b.store_shared_i32(ex_h_addr.into(), prev_h.into());
    b.store_shared_i32(ex_hh_addr.into(), prev_hh.into());
    b.sync_threads();
    let nb_h = b.load_shared_i32(nb_h_addr.into());
    let nb_hh = b.load_shared_i32(nb_hh_addr.into());

    b.loc("v0_reload");
    let reload_sb = b.peek_next_id();
    b.load_to(sb, AddrSpace::Global, MemTy::I32, sb_addr.into());

    b.loc("v0_dead_store");
    let dead_store = b.peek_next_id();
    b.store_global_i32(scratch_addr.into(), prev_h.into());

    b.loc("v0_guard");
    let i = b.sub(diag.into(), tid.into());
    let ge0 = b.icmp_ge(i.into(), Operand::ImmI32(0));
    let ltm = b.icmp_lt(i.into(), m.into());
    let in_range = b.and(ge0.into(), ltm.into());
    let active = b.and(is_valid.into(), in_range.into());
    b.cond_br(active.into(), comp, skip);

    b.switch_to(comp);
    b.loc("v0_cell");
    let sa_idx = b.add(off_a.into(), i.into());
    let sa_addr = b.index_addr(Operand::Param(p_seq_a), sa_idx.into(), 4);
    let sa = b.load_global_i32(sa_addr.into());
    let eq = b.icmp_eq(sa.into(), sb.into());
    let sc = b.select(
        eq.into(),
        Operand::ImmI32(score::MATCH),
        Operand::ImmI32(score::MISMATCH),
    );
    let j0 = b.icmp_eq(tid.into(), Operand::ImmI32(0));
    let i0 = b.icmp_eq(i.into(), Operand::ImmI32(0));
    let d0 = b.or(j0.into(), i0.into());
    let dh = b.select(d0.into(), Operand::ImmI32(0), nb_hh.into());
    let lh = b.select(j0.into(), Operand::ImmI32(0), nb_h.into());
    let uh = b.select(i0.into(), Operand::ImmI32(0), prev_h.into());
    let h_diag = b.add(dh.into(), sc.into());
    let h_left = b.add(lh.into(), Operand::ImmI32(score::GAP));
    let h_up = b.add(uh.into(), Operand::ImmI32(score::GAP));
    let h1 = b.max(h_diag.into(), h_left.into());
    let h2 = b.max(h1.into(), h_up.into());
    let h = b.max(h2.into(), Operand::ImmI32(0));
    let better = b.icmp(CmpPred::Gt, h.into(), best_s.into());
    b.select_to(best_s, better.into(), h.into(), best_s.into());
    b.select_to(best_i, better.into(), i.into(), best_i.into());
    b.mov_to(prev_hh, prev_h.into());
    b.mov_to(prev_h, h.into());
    b.br(skip);

    b.switch_to(skip);
    b.loc("v0_step");
    b.sync_threads();
    b.ibin_to(
        diag,
        gevo_ir::IntBinOp::Add,
        diag.into(),
        Operand::ImmI32(1),
    );
    b.br(diag_hdr);

    // ---- final reduction (thread 0 scans per-column bests) -------------
    b.switch_to(after);
    b.loc("v0_reduce");
    b.store_shared_i32(red_s_addr.into(), best_s.into());
    b.store_shared_i32(red_i_addr.into(), best_i.into());
    b.sync_threads();
    let t0 = b.icmp_eq(tid.into(), Operand::ImmI32(0));
    b.cond_br(t0.into(), red_start, done);

    b.switch_to(red_start);
    let bs = b.mov(Operand::ImmI32(0));
    let bi = b.mov(Operand::ImmI32(-1));
    let bj = b.mov(Operand::ImmI32(-1));
    let col = b.mov(Operand::ImmI32(0));
    b.br(red_hdr);

    b.switch_to(red_hdr);
    let red_more = b.icmp_lt(col.into(), n.into());
    b.cond_br(red_more.into(), red_body, red_done);

    b.switch_to(red_body);
    let rs_addr = b.index_addr(Operand::ImmI64(2 * t * 4), col.into(), 4);
    let ri_addr = b.index_addr(Operand::ImmI64(3 * t * 4), col.into(), 4);
    let s = b.load_shared_i32(rs_addr.into());
    let ii = b.load_shared_i32(ri_addr.into());
    let sgt = b.icmp(CmpPred::Gt, s.into(), bs.into());
    let s_eq = b.icmp_eq(s.into(), bs.into());
    let ilt = b.icmp_lt(ii.into(), bi.into());
    let tie = b.and(s_eq.into(), ilt.into());
    let better2 = b.or(sgt.into(), tie.into());
    b.select_to(bs, better2.into(), s.into(), bs.into());
    b.select_to(bi, better2.into(), ii.into(), bi.into());
    b.select_to(bj, better2.into(), col.into(), bj.into());
    b.ibin_to(col, gevo_ir::IntBinOp::Add, col.into(), Operand::ImmI32(1));
    b.br(red_hdr);

    b.switch_to(red_done);
    let out_idx = b.mul(bid.into(), Operand::ImmI32(4));
    let out0 = b.index_addr(Operand::Param(p_out), out_idx.into(), 4);
    b.store_global_i32(out0.into(), bs.into());
    let out1 = b.add_i64(out0.into(), Operand::ImmI64(4));
    b.store_global_i32(out1.into(), bi.into());
    let out2 = b.add_i64(out0.into(), Operand::ImmI64(8));
    b.store_global_i32(out2.into(), bj.into());
    b.br(done);

    b.switch_to(done);
    b.ret();

    (
        b.finish(),
        V0Sites {
            init_branch,
            init_store,
            init_sync,
            reload_sb,
            dead_store,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v0_kernel_verifies() {
        let (k, _) = build_v0(32, 4);
        assert!(gevo_ir::verify::verify(&k).is_ok(), "{k}");
    }

    #[test]
    fn v0_sites_resolve() {
        let (k, sites) = build_v0(32, 4);
        // Body sites are body instructions; branch site is a terminator.
        assert!(k.locate(sites.init_store).is_some());
        assert!(k.locate(sites.init_sync).is_some());
        assert!(k.locate(sites.reload_sb).is_some());
        assert!(k.locate(sites.dead_store).is_some());
        assert!(k.terminator(sites.init_branch).is_some());
    }

    #[test]
    fn v0_shape() {
        let (k, _) = build_v0(64, 4);
        // Comparable in spirit to the paper's "423 lines / 1097 LLVM-IR
        // instructions" single kernel: substantial, single-kernel, with a
        // mix of memory and control structure.
        assert!(
            k.inst_count() > 60,
            "V0 has {} instructions",
            k.inst_count()
        );
        assert!(k.blocks.len() >= 10);
        assert_eq!(k.shared_bytes, 4 * 64 * 4);
    }
}
