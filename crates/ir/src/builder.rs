//! Ergonomic construction of kernels.
//!
//! [`KernelBuilder`] is how the workload crates write their GPU kernels
//! "in CUDA" — it plays the role of the Clang CUDA frontend in the paper's
//! Figure 1 pipeline. The builder panics on misuse (type mismatches,
//! unterminated blocks): a malformed *hand-written* kernel is a programming
//! error, unlike malformed *mutated* kernels, which are handled gracefully
//! by the verifier and the simulator.

use crate::inst::{
    BlockId, FloatBinOp, InstId, Instr, IntBinOp, LocId, Op, Operand, Reg, Special, TermKind,
    Terminator, LOC_NONE,
};
use crate::kernel::{Block, Kernel, Param};
use crate::types::{AddrSpace, CmpPred, MemTy, ParamTy, Ty};

/// Incrementally builds a [`Kernel`].
///
/// # Examples
///
/// ```
/// use gevo_ir::{KernelBuilder, AddrSpace, Special, Operand};
///
/// let mut b = KernelBuilder::new("scale");
/// let data = b.param_ptr("data", AddrSpace::Global);
/// let n = b.param_i32("n");
/// let tid = b.global_thread_id();
/// let in_range = b.icmp_lt(tid.into(), Operand::Param(n));
/// let body = b.new_block("body");
/// let exit = b.new_block("exit");
/// b.cond_br(in_range.into(), body, exit);
///
/// b.switch_to(body);
/// let addr = b.index_addr(Operand::Param(data), tid.into(), 4);
/// let v = b.load(AddrSpace::Global, gevo_ir::MemTy::I32, addr.into());
/// let doubled = b.add(v.into(), v.into());
/// b.store(AddrSpace::Global, gevo_ir::MemTy::I32, addr.into(), doubled.into());
/// b.br(exit);
///
/// b.switch_to(exit);
/// b.ret();
/// let kernel = b.finish();
/// assert_eq!(kernel.blocks.len(), 3);
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    kernel: Kernel,
    /// Blocks under construction: instruction lists plus optional terminator.
    building: Vec<(String, Vec<Instr>, Option<Terminator>)>,
    current: usize,
    cur_loc: LocId,
}

impl KernelBuilder {
    /// Starts a new kernel with an empty entry block selected.
    #[must_use]
    pub fn new(name: &str) -> KernelBuilder {
        KernelBuilder {
            kernel: Kernel::empty(name),
            building: vec![("entry".to_string(), Vec::new(), None)],
            current: 0,
            cur_loc: LOC_NONE,
        }
    }

    /// Declares the kernel's shared-memory footprint in bytes.
    pub fn shared_bytes(&mut self, bytes: u32) {
        self.kernel.shared_bytes = bytes;
    }

    /// Sets the source tag attached to subsequently emitted instructions;
    /// this is the reproduction's analog of the paper's Clang debug-info
    /// instrumentation (§III-A).
    pub fn loc(&mut self, tag: &str) {
        self.cur_loc = self.kernel.intern_loc(tag);
    }

    // ----- parameters --------------------------------------------------

    /// Declares a pointer parameter; returns its index for `Operand::Param`.
    pub fn param_ptr(&mut self, name: &str, space: AddrSpace) -> u16 {
        self.push_param(name, ParamTy::Ptr(space))
    }

    /// Declares an `i32` scalar parameter.
    pub fn param_i32(&mut self, name: &str) -> u16 {
        self.push_param(name, ParamTy::Val(Ty::I32))
    }

    /// Declares an `i64` scalar parameter.
    pub fn param_i64(&mut self, name: &str) -> u16 {
        self.push_param(name, ParamTy::Val(Ty::I64))
    }

    /// Declares an `f32` scalar parameter.
    pub fn param_f32(&mut self, name: &str) -> u16 {
        self.push_param(name, ParamTy::Val(Ty::F32))
    }

    fn push_param(&mut self, name: &str, ty: ParamTy) -> u16 {
        let idx = u16::try_from(self.kernel.params.len()).expect("param count overflow");
        self.kernel.params.push(Param {
            name: name.to_string(),
            ty,
        });
        idx
    }

    // ----- blocks -------------------------------------------------------

    /// Creates (but does not select) a new block; usable as a forward
    /// branch target.
    pub fn new_block(&mut self, name: &str) -> BlockId {
        let id = BlockId(u32::try_from(self.building.len()).expect("block count overflow"));
        self.building.push((name.to_string(), Vec::new(), None));
        id
    }

    /// Selects the block subsequent instructions are appended to.
    ///
    /// # Panics
    /// Panics if the block is already terminated.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            self.building[block.index()].2.is_none(),
            "switch_to: block {block} already terminated"
        );
        self.current = block.index();
    }

    /// The currently selected block.
    #[must_use]
    pub fn current_block(&self) -> BlockId {
        BlockId(u32::try_from(self.current).expect("block index overflow"))
    }

    // ----- generic emission ----------------------------------------------

    /// Emits an instruction with a fresh destination register of type
    /// `dst_ty` (or no destination for store/barrier ops).
    ///
    /// # Panics
    /// Panics on arity mismatch or if the current block is terminated.
    pub fn emit(&mut self, op: Op, args: Vec<Operand>, dst_ty: Option<Ty>) -> Option<Reg> {
        assert_eq!(args.len(), op.arity(), "{}: arity mismatch", op.mnemonic());
        assert_eq!(
            op.has_dst(),
            dst_ty.is_some(),
            "{}: destination presence mismatch",
            op.mnemonic()
        );
        let dst = dst_ty.map(|t| self.kernel.alloc_reg(t));
        self.push_inst(dst, op, args);
        dst
    }

    /// Emits an instruction writing an existing register (register-machine
    /// re-assignment, used for loop induction variables).
    ///
    /// # Panics
    /// Panics if the register's type does not match what the op produces
    /// (checked for ops with statically known result types).
    pub fn emit_to(&mut self, dst: Reg, op: Op, args: Vec<Operand>) {
        assert_eq!(args.len(), op.arity(), "{}: arity mismatch", op.mnemonic());
        assert!(op.has_dst(), "{}: op has no destination", op.mnemonic());
        self.push_inst(Some(dst), op, args);
    }

    fn push_inst(&mut self, dst: Option<Reg>, op: Op, args: Vec<Operand>) {
        let id = self.kernel.fresh_inst_id();
        let loc = self.cur_loc;
        let blk = &mut self.building[self.current];
        assert!(blk.2.is_none(), "emitting into terminated block {}", blk.0);
        blk.1.push(Instr {
            id,
            dst,
            op,
            args,
            loc,
        });
    }

    fn arg_ty(&self, a: &Operand) -> Ty {
        self.kernel.operand_ty(a)
    }

    // ----- moves & specials ----------------------------------------------

    /// Copies an operand into a fresh register of the same type.
    pub fn mov(&mut self, a: Operand) -> Reg {
        let ty = self.arg_ty(&a);
        self.emit(Op::Mov, vec![a], Some(ty)).expect("mov has dst")
    }

    /// Copies an operand into an existing register.
    pub fn mov_to(&mut self, dst: Reg, a: Operand) {
        self.emit_to(dst, Op::Mov, vec![a]);
    }

    /// Materializes a special register into an `i32` register.
    pub fn special_i32(&mut self, s: Special) -> Reg {
        self.mov(Operand::Special(s))
    }

    /// `blockIdx.x * blockDim.x + threadIdx.x` — the ubiquitous global
    /// thread index, emitted as three instructions.
    pub fn global_thread_id(&mut self) -> Reg {
        let mul = self.mul(
            Operand::Special(Special::BlockId),
            Operand::Special(Special::BlockDim),
        );
        self.add(mul.into(), Operand::Special(Special::ThreadId))
    }

    // ----- integer/float arithmetic ---------------------------------------

    /// Emits an integer binary op; operand types must match.
    pub fn ibin(&mut self, op: IntBinOp, a: Operand, b: Operand) -> Reg {
        let ta = self.arg_ty(&a);
        let tb = self.arg_ty(&b);
        assert_eq!(ta, tb, "ibin {op}: operand types differ ({ta} vs {tb})");
        assert!(
            matches!(ta, Ty::I32 | Ty::I64) || (ta == Ty::Bool && op.is_logical()),
            "ibin {op}: invalid operand type {ta}"
        );
        self.emit(Op::IBin(op), vec![a, b], Some(ta))
            .expect("ibin has dst")
    }

    /// Integer binary op writing an existing register.
    pub fn ibin_to(&mut self, dst: Reg, op: IntBinOp, a: Operand, b: Operand) {
        let ta = self.arg_ty(&a);
        assert_eq!(
            self.kernel.reg_ty(dst),
            ta,
            "ibin_to {op}: dst type mismatch"
        );
        self.emit_to(dst, Op::IBin(op), vec![a, b]);
    }

    /// Emits a float binary op.
    pub fn fbin(&mut self, op: FloatBinOp, a: Operand, b: Operand) -> Reg {
        assert_eq!(self.arg_ty(&a), Ty::F32, "fbin {op}: lhs not f32");
        assert_eq!(self.arg_ty(&b), Ty::F32, "fbin {op}: rhs not f32");
        self.emit(Op::FBin(op), vec![a, b], Some(Ty::F32))
            .expect("fbin has dst")
    }

    /// Float binary op writing an existing register.
    pub fn fbin_to(&mut self, dst: Reg, op: FloatBinOp, a: Operand, b: Operand) {
        assert_eq!(
            self.kernel.reg_ty(dst),
            Ty::F32,
            "fbin_to {op}: dst not f32"
        );
        self.emit_to(dst, Op::FBin(op), vec![a, b]);
    }

    /// Wrapping add (`i32`/`i64` inferred from operands).
    pub fn add(&mut self, a: Operand, b: Operand) -> Reg {
        self.ibin(IntBinOp::Add, a, b)
    }

    /// Wrapping subtract.
    pub fn sub(&mut self, a: Operand, b: Operand) -> Reg {
        self.ibin(IntBinOp::Sub, a, b)
    }

    /// Wrapping multiply.
    pub fn mul(&mut self, a: Operand, b: Operand) -> Reg {
        self.ibin(IntBinOp::Mul, a, b)
    }

    /// Signed divide (x/0 = 0).
    pub fn div(&mut self, a: Operand, b: Operand) -> Reg {
        self.ibin(IntBinOp::Div, a, b)
    }

    /// Signed remainder (x%0 = 0).
    pub fn rem(&mut self, a: Operand, b: Operand) -> Reg {
        self.ibin(IntBinOp::Rem, a, b)
    }

    /// Signed minimum.
    pub fn min(&mut self, a: Operand, b: Operand) -> Reg {
        self.ibin(IntBinOp::Min, a, b)
    }

    /// Signed maximum.
    pub fn max(&mut self, a: Operand, b: Operand) -> Reg {
        self.ibin(IntBinOp::Max, a, b)
    }

    /// Bitwise/logical AND.
    pub fn and(&mut self, a: Operand, b: Operand) -> Reg {
        self.ibin(IntBinOp::And, a, b)
    }

    /// Bitwise/logical OR.
    pub fn or(&mut self, a: Operand, b: Operand) -> Reg {
        self.ibin(IntBinOp::Or, a, b)
    }

    /// Convenience `i64` add (asserts both operands are `i64`).
    pub fn add_i64(&mut self, a: Operand, b: Operand) -> Reg {
        assert_eq!(self.arg_ty(&a), Ty::I64);
        self.ibin(IntBinOp::Add, a, b)
    }

    /// Convenience `i64` multiply.
    pub fn mul_i64(&mut self, a: Operand, b: Operand) -> Reg {
        assert_eq!(self.arg_ty(&a), Ty::I64);
        self.ibin(IntBinOp::Mul, a, b)
    }

    // ----- comparisons, select, unary --------------------------------------

    /// Integer compare producing a `b1` register.
    pub fn icmp(&mut self, pred: CmpPred, a: Operand, b: Operand) -> Reg {
        let ta = self.arg_ty(&a);
        assert_eq!(ta, self.arg_ty(&b), "icmp {pred}: operand types differ");
        assert!(matches!(ta, Ty::I32 | Ty::I64), "icmp {pred}: not integer");
        self.emit(Op::Icmp(pred), vec![a, b], Some(Ty::Bool))
            .expect("icmp has dst")
    }

    /// `icmp lt` sugar.
    pub fn icmp_lt(&mut self, a: Operand, b: Operand) -> Reg {
        self.icmp(CmpPred::Lt, a, b)
    }

    /// `icmp eq` sugar.
    pub fn icmp_eq(&mut self, a: Operand, b: Operand) -> Reg {
        self.icmp(CmpPred::Eq, a, b)
    }

    /// `icmp ge` sugar.
    pub fn icmp_ge(&mut self, a: Operand, b: Operand) -> Reg {
        self.icmp(CmpPred::Ge, a, b)
    }

    /// Float compare producing a `b1` register.
    pub fn fcmp(&mut self, pred: CmpPred, a: Operand, b: Operand) -> Reg {
        assert_eq!(self.arg_ty(&a), Ty::F32);
        assert_eq!(self.arg_ty(&b), Ty::F32);
        self.emit(Op::Fcmp(pred), vec![a, b], Some(Ty::Bool))
            .expect("fcmp has dst")
    }

    /// Ternary select; result type follows the true-arm.
    pub fn select(&mut self, cond: Operand, t: Operand, f: Operand) -> Reg {
        assert_eq!(self.arg_ty(&cond), Ty::Bool, "select: cond not b1");
        let tt = self.arg_ty(&t);
        assert_eq!(tt, self.arg_ty(&f), "select: arm types differ");
        self.emit(Op::Select, vec![cond, t, f], Some(tt))
            .expect("select has dst")
    }

    /// Select writing an existing register.
    pub fn select_to(&mut self, dst: Reg, cond: Operand, t: Operand, f: Operand) {
        self.emit_to(dst, Op::Select, vec![cond, t, f]);
    }

    /// Logical/bitwise NOT.
    pub fn not(&mut self, a: Operand) -> Reg {
        let ty = self.arg_ty(&a);
        self.emit(Op::Not, vec![a], Some(ty)).expect("not has dst")
    }

    /// Sign-extend `i32` → `i64`.
    pub fn sext(&mut self, a: Operand) -> Reg {
        assert_eq!(self.arg_ty(&a), Ty::I32, "sext: operand not i32");
        self.emit(Op::Sext, vec![a], Some(Ty::I64))
            .expect("sext has dst")
    }

    /// Truncate `i64` → `i32`.
    pub fn trunc(&mut self, a: Operand) -> Reg {
        assert_eq!(self.arg_ty(&a), Ty::I64, "trunc: operand not i64");
        self.emit(Op::Trunc, vec![a], Some(Ty::I32))
            .expect("trunc has dst")
    }

    /// Signed `i32` → `f32`.
    pub fn sitofp(&mut self, a: Operand) -> Reg {
        assert_eq!(self.arg_ty(&a), Ty::I32, "sitofp: operand not i32");
        self.emit(Op::SiToFp, vec![a], Some(Ty::F32))
            .expect("sitofp has dst")
    }

    /// `f32` → signed `i32`.
    pub fn fptosi(&mut self, a: Operand) -> Reg {
        assert_eq!(self.arg_ty(&a), Ty::F32, "fptosi: operand not f32");
        self.emit(Op::FpToSi, vec![a], Some(Ty::I32))
            .expect("fptosi has dst")
    }

    /// Zero-extend `b1` → `i32`.
    pub fn zext_bool(&mut self, a: Operand) -> Reg {
        assert_eq!(self.arg_ty(&a), Ty::Bool, "zext: operand not b1");
        self.emit(Op::ZextBool, vec![a], Some(Ty::I32))
            .expect("zext has dst")
    }

    // ----- memory -----------------------------------------------------------

    /// Byte address `base + index * elem_size`; `index` may be `i32`
    /// (sign-extended) or `i64`.
    pub fn index_addr(&mut self, base: Operand, index: Operand, elem_size: i64) -> Reg {
        let idx64 = match self.arg_ty(&index) {
            Ty::I32 => self.sext(index).into(),
            Ty::I64 => index,
            other => panic!("index_addr: index has type {other}"),
        };
        let scaled = self.mul_i64(idx64, Operand::ImmI64(elem_size));
        assert_eq!(self.arg_ty(&base), Ty::I64, "index_addr: base not i64");
        self.add_i64(base, scaled.into())
    }

    /// Typed load.
    pub fn load(&mut self, space: AddrSpace, ty: MemTy, addr: Operand) -> Reg {
        assert_eq!(self.arg_ty(&addr), Ty::I64, "load: addr not i64");
        self.emit(Op::Load { space, ty }, vec![addr], Some(ty.value_ty()))
            .expect("load has dst")
    }

    /// Typed load into an existing register.
    pub fn load_to(&mut self, dst: Reg, space: AddrSpace, ty: MemTy, addr: Operand) {
        self.emit_to(dst, Op::Load { space, ty }, vec![addr]);
    }

    /// Typed store.
    pub fn store(&mut self, space: AddrSpace, ty: MemTy, addr: Operand, val: Operand) {
        assert_eq!(self.arg_ty(&addr), Ty::I64, "store: addr not i64");
        assert_eq!(
            self.arg_ty(&val),
            ty.value_ty(),
            "store: value type mismatch"
        );
        self.emit(Op::Store { space, ty }, vec![addr, val], None);
    }

    /// `ld.global.i32` sugar.
    pub fn load_global_i32(&mut self, addr: Operand) -> Reg {
        self.load(AddrSpace::Global, MemTy::I32, addr)
    }

    /// `st.global.i32` sugar.
    pub fn store_global_i32(&mut self, addr: Operand, val: Operand) {
        self.store(AddrSpace::Global, MemTy::I32, addr, val);
    }

    /// `ld.shared.i32` sugar.
    pub fn load_shared_i32(&mut self, addr: Operand) -> Reg {
        self.load(AddrSpace::Shared, MemTy::I32, addr)
    }

    /// `st.shared.i32` sugar.
    pub fn store_shared_i32(&mut self, addr: Operand, val: Operand) {
        self.store(AddrSpace::Shared, MemTy::I32, addr, val);
    }

    /// Atomic fetch-add (`i32`), returning the old value.
    pub fn atomic_add(&mut self, space: AddrSpace, addr: Operand, val: Operand) -> Reg {
        self.emit(Op::AtomicAdd { space }, vec![addr, val], Some(Ty::I32))
            .expect("atomic has dst")
    }

    /// Atomic fetch-max (`i32`), returning the old value.
    pub fn atomic_max(&mut self, space: AddrSpace, addr: Operand, val: Operand) -> Reg {
        self.emit(Op::AtomicMax { space }, vec![addr, val], Some(Ty::I32))
            .expect("atomic has dst")
    }

    /// Atomic compare-and-swap (`i32`), returning the old value.
    pub fn atomic_cas(
        &mut self,
        space: AddrSpace,
        addr: Operand,
        expected: Operand,
        new: Operand,
    ) -> Reg {
        self.emit(
            Op::AtomicCas { space },
            vec![addr, expected, new],
            Some(Ty::I32),
        )
        .expect("atomic has dst")
    }

    // ----- warp & block primitives --------------------------------------------

    /// `__shfl_sync`: read `val` from lane `src_lane`.
    pub fn shfl(&mut self, val: Operand, src_lane: Operand) -> Reg {
        let ty = self.arg_ty(&val);
        self.emit(Op::ShflSync, vec![val, src_lane], Some(ty))
            .expect("shfl has dst")
    }

    /// `__shfl_up_sync`: read `val` from the lane `delta` below.
    pub fn shfl_up(&mut self, val: Operand, delta: Operand) -> Reg {
        let ty = self.arg_ty(&val);
        self.emit(Op::ShflUpSync, vec![val, delta], Some(ty))
            .expect("shfl has dst")
    }

    /// `__ballot_sync` over the active mask.
    pub fn ballot(&mut self, pred: Operand) -> Reg {
        assert_eq!(self.arg_ty(&pred), Ty::Bool, "ballot: pred not b1");
        self.emit(Op::BallotSync, vec![pred], Some(Ty::I32))
            .expect("ballot has dst")
    }

    /// `__activemask()`.
    pub fn activemask(&mut self) -> Reg {
        self.emit(Op::ActiveMask, vec![], Some(Ty::I32))
            .expect("activemask has dst")
    }

    /// `__syncthreads()`.
    pub fn sync_threads(&mut self) {
        self.emit(Op::SyncThreads, vec![], None);
    }

    /// Counter-based RNG draw (see [`Op::RngNext`]).
    pub fn rng_next(&mut self, seed: Operand, counter: Operand) -> Reg {
        assert_eq!(self.arg_ty(&seed), Ty::I64, "rng: seed not i64");
        assert_eq!(self.arg_ty(&counter), Ty::I64, "rng: counter not i64");
        self.emit(Op::RngNext, vec![seed, counter], Some(Ty::I32))
            .expect("rng has dst")
    }

    // ----- terminators ------------------------------------------------------------

    /// Terminates the current block with an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.terminate(TermKind::Br(target));
    }

    /// Terminates the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: Operand, if_true: BlockId, if_false: BlockId) {
        assert_eq!(self.arg_ty(&cond), Ty::Bool, "cond_br: cond not b1");
        self.terminate(TermKind::CondBr {
            cond,
            if_true,
            if_false,
        });
    }

    /// Terminates the current block with a thread exit.
    pub fn ret(&mut self) {
        self.terminate(TermKind::Ret);
    }

    fn terminate(&mut self, kind: TermKind) {
        let id = self.kernel.fresh_inst_id();
        let loc = self.cur_loc;
        let blk = &mut self.building[self.current];
        assert!(blk.2.is_none(), "block {} terminated twice", blk.0);
        blk.2 = Some(Terminator { id, kind, loc });
    }

    // ----- finish ----------------------------------------------------------------

    /// Consumes the builder and produces the kernel.
    ///
    /// # Panics
    /// Panics if any block lacks a terminator or a branch targets a
    /// nonexistent block.
    #[must_use]
    pub fn finish(self) -> Kernel {
        let mut kernel = self.kernel;
        let n_blocks = self.building.len();
        for (name, instrs, term) in self.building {
            let term = term.unwrap_or_else(|| panic!("block {name} missing terminator"));
            for succ in term.successors() {
                assert!(
                    succ.index() < n_blocks,
                    "block {name} branches to nonexistent {succ}"
                );
            }
            kernel.push_block(Block { name, instrs, term });
        }
        kernel
    }

    /// Read-only view of the kernel under construction (register types,
    /// params) — used by workload code to introspect while building.
    #[must_use]
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Allocates an uninitialized register of the given type (for
    /// loop-carried values written by `*_to` methods).
    pub fn fresh_reg(&mut self, ty: Ty) -> Reg {
        self.kernel.alloc_reg(ty)
    }

    /// The ID the *next* emitted instruction will receive; workloads use
    /// this to record the IDs of their annotated inefficiency sites.
    #[must_use]
    pub fn peek_next_id(&self) -> InstId {
        InstId(self.kernel.inst_id_bound())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_kernel() {
        let mut b = KernelBuilder::new("k");
        let p = b.param_ptr("out", AddrSpace::Global);
        let tid = b.special_i32(Special::ThreadId);
        let addr = b.index_addr(Operand::Param(p), tid.into(), 4);
        b.store_global_i32(addr.into(), tid.into());
        b.ret();
        let k = b.finish();
        assert_eq!(k.blocks.len(), 1);
        assert_eq!(k.name, "k");
        // mov + sext + mul + add + store
        assert_eq!(k.inst_count(), 5);
        assert!(matches!(k.blocks[0].term.kind, TermKind::Ret));
    }

    #[test]
    fn loop_with_reassignment() {
        let mut b = KernelBuilder::new("loop");
        let n = b.param_i32("n");
        let i = b.mov(Operand::ImmI32(0));
        let hdr = b.new_block("hdr");
        let body = b.new_block("body");
        let exit = b.new_block("exit");
        b.br(hdr);
        b.switch_to(hdr);
        let c = b.icmp_lt(i.into(), Operand::Param(n));
        b.cond_br(c.into(), body, exit);
        b.switch_to(body);
        b.ibin_to(i, IntBinOp::Add, i.into(), Operand::ImmI32(1));
        b.br(hdr);
        b.switch_to(exit);
        b.ret();
        let k = b.finish();
        assert_eq!(k.blocks.len(), 4);
        // Induction variable written by two instructions (mov + add).
        let writes = k
            .iter_insts()
            .filter(|(_, inst)| inst.dst == Some(i))
            .count();
        assert_eq!(writes, 2);
    }

    #[test]
    #[should_panic(expected = "missing terminator")]
    fn unterminated_block_panics() {
        let mut b = KernelBuilder::new("bad");
        let _ = b.new_block("orphan");
        b.ret();
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "terminated twice")]
    fn double_terminate_panics() {
        let mut b = KernelBuilder::new("bad");
        b.ret();
        b.ret();
    }

    #[test]
    #[should_panic(expected = "operand types differ")]
    fn type_mismatch_panics() {
        let mut b = KernelBuilder::new("bad");
        let x = b.mov(Operand::ImmI32(1));
        let y = b.mov(Operand::ImmI64(1));
        let _ = b.add(x.into(), y.into());
    }

    #[test]
    fn loc_tags_attach() {
        let mut b = KernelBuilder::new("k");
        b.loc("site_x");
        let r = b.mov(Operand::ImmI32(1));
        b.loc("site_y");
        let _ = b.add(r.into(), Operand::ImmI32(2));
        b.ret();
        let k = b.finish();
        let tags: Vec<&str> = k
            .iter_insts()
            .map(|(_, inst)| k.loc_str(inst.loc))
            .collect();
        assert_eq!(tags, vec!["site_x", "site_y"]);
    }

    #[test]
    fn global_thread_id_shape() {
        let mut b = KernelBuilder::new("k");
        let _ = b.global_thread_id();
        b.ret();
        let k = b.finish();
        assert_eq!(k.inst_count(), 2); // mul + add
    }
}
