//! Differential property test for the persistent-scratch execution
//! path: launching through a **dirty, reused** [`ExecScratch`] must be
//! bit-identical — full [`LaunchStats`] and final device memory — to
//! launching on a fresh `Gpu` with a fresh scratch, on every spec of
//! the paper's Table I.
//!
//! The scratch is dirtied by first executing a *different* random
//! kernel with a *different* geometry through it, so stale warp
//! records, register files sized for another kernel, shared-memory
//! contents and a stale warp-order permutation are all present when the
//! kernel under test runs. Any state leak — a skipped reset, a
//! wrong-size register memcpy, reused shared bytes — shows up as a
//! stats or memory divergence.

use gevo_bench::kernel_gen::random_kernel;
use gevo_bench::scaled_table1_specs;
use gevo_gpu::{ExecScratch, Gpu, GpuSpec, KernelArg, LaunchConfig, LaunchStats};
use gevo_ir::Kernel;
use proptest::prelude::*;

/// Two launches (cold + warm L2) of `kernel` on a fresh device, through
/// the given scratch via `launch_compiled_in`.
fn run_with_scratch(
    spec: &GpuSpec,
    kernel: &Kernel,
    cfg: LaunchConfig,
    threads: u32,
    scratch: &mut ExecScratch,
) -> (Vec<LaunchStats>, Vec<i32>) {
    let mut gpu = Gpu::new(spec.clone());
    let compiled = gpu.compile(kernel).expect("compiles");
    let out = gpu.mem_mut().alloc(u64::from(threads) * 4).expect("alloc");
    let args = [KernelArg::from(out)];
    let s1 = gpu
        .launch_compiled_in(&compiled, cfg, &args, scratch)
        .expect("launch");
    let s2 = gpu
        .launch_compiled_in(&compiled, cfg, &args, scratch)
        .expect("relaunch");
    (vec![s1, s2], gpu.mem().read_i32s(out, 0, threads as usize))
}

/// Dirties `scratch` by running an unrelated kernel on a throwaway
/// device (whose memory-system state is discarded with it).
fn dirty_scratch(
    spec: &GpuSpec,
    scratch: &mut ExecScratch,
    dirty_seed: u64,
    dirty_block: u32,
    sched: u64,
) {
    let kernel = random_kernel(dirty_seed, 6);
    let mut gpu = Gpu::new(spec.clone());
    let compiled = gpu.compile(&kernel).expect("dirty kernel compiles");
    let out = gpu
        .mem_mut()
        .alloc(u64::from(2 * dirty_block) * 4)
        .expect("alloc");
    let cfg = LaunchConfig::new(2, dirty_block).with_seed(sched);
    gpu.launch_compiled_in(&compiled, cfg, &[KernelArg::from(out)], scratch)
        .expect("dirtying launch");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12).with_rng_seed(0x5C4A_7C11))]

    /// Reused-scratch launches are indistinguishable from fresh-scratch
    /// launches: identical stats (cold and warm L2) and identical final
    /// device memory, for random kernels on all three Table-I specs —
    /// even when the scratch previously executed a different kernel
    /// with a different geometry and warp-order seed.
    #[test]
    fn dirty_scratch_is_bit_identical_to_fresh(
        seed in 0u64..u64::MAX,
        n_ops in 0u64..24,
        grid in 1u32..3,
        block in 1u32..17,
        dirty_seed in 0u64..u64::MAX,
        dirty_block in 1u32..33,
        dirty_sched in 0u64..100,
    ) {
        let kernel = random_kernel(seed, n_ops);
        prop_assert!(gevo_ir::verify::verify(&kernel).is_ok());
        let cfg = LaunchConfig::new(grid, block);
        let threads = grid * block;
        for spec in scaled_table1_specs() {
            let mut fresh = ExecScratch::new();
            let (f_stats, f_mem) = run_with_scratch(&spec, &kernel, cfg, threads, &mut fresh);

            let mut dirty = ExecScratch::new();
            dirty_scratch(&spec, &mut dirty, dirty_seed, dirty_block, dirty_sched);
            let (d_stats, d_mem) = run_with_scratch(&spec, &kernel, cfg, threads, &mut dirty);

            prop_assert!(f_stats == d_stats, "stats diverge on {}", spec.name);
            prop_assert!(f_mem == d_mem, "memory diverges on {}", spec.name);
        }
    }

    /// The device-owned scratch path (`launch_compiled`) matches the
    /// explicit-scratch path (`launch_compiled_in`) under permuted warp
    /// schedulers too.
    #[test]
    fn owned_and_explicit_scratch_agree(
        seed in 0u64..u64::MAX,
        sched in 0u64..1000,
    ) {
        let kernel = random_kernel(seed, 10);
        let cfg = LaunchConfig::new(2, 16).with_seed(sched);
        let spec = &scaled_table1_specs()[0];

        let mut gpu_a = Gpu::new(spec.clone());
        let compiled = gpu_a.compile(&kernel).expect("compiles");
        let out_a = gpu_a.mem_mut().alloc(32 * 4).expect("alloc");
        let a1 = gpu_a
            .launch_compiled(&compiled, cfg, &[KernelArg::from(out_a)])
            .expect("owned launch");

        let mut gpu_b = Gpu::new(spec.clone());
        let out_b = gpu_b.mem_mut().alloc(32 * 4).expect("alloc");
        let mut scratch = ExecScratch::new();
        dirty_scratch(spec, &mut scratch, seed ^ 0xABCD, 9, sched);
        let b1 = gpu_b
            .launch_compiled_in(&compiled, cfg, &[KernelArg::from(out_b)], &mut scratch)
            .expect("explicit launch");

        prop_assert_eq!(a1, b1);
        prop_assert_eq!(
            gpu_a.mem().read_i32s(out_a, 0, 32),
            gpu_b.mem().read_i32s(out_b, 0, 32)
        );
    }
}
