//! Failure-model tests (DESIGN.md §3.9): checkpoint corruption is
//! *always* detected and rolled back (property-based, any single-byte
//! flip or truncation), and `gevo-serve` supervision honors its
//! contract across real process boundaries — per-field submit
//! rejection, graceful shutdown that suspends (not loses) in-flight
//! jobs, and per-job deadlines that fail loudly.
//!
//! The end-to-end byte-identity battery (corrupt → rollback → rerun →
//! identical result) lives in the `chaos_check` binary, which CI runs
//! as a separate smoke step.

use gevo_bench::checkpoint::{load_state, load_state_with_rollback, previous_path, seal};
use gevo_engine::{GaConfig, Search, SearchSpec, StepStatus};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// One real mid-search checkpoint, sealed exactly as
/// `write_checkpoint` would write it. Built once: the corruption
/// property is about the *container*, not about which search produced
/// the state.
fn sealed_checkpoint() -> &'static str {
    static SEALED: OnceLock<String> = OnceLock::new();
    SEALED.get_or_init(|| {
        let w = gevo_bench::workload_by_name("adept-v0").expect("registry workload");
        let spec = SearchSpec {
            ga: GaConfig {
                population: 6,
                generations: 4,
                seed: 9,
                threads: 1,
                ..GaConfig::scaled()
            },
            islands: 2,
            ..SearchSpec::default()
        };
        let mut search = Search::from_spec(w.as_ref(), spec);
        for _ in 0..2 {
            assert!(matches!(search.step(), StepStatus::Advanced { .. }));
        }
        seal(&search.checkpoint().to_json().to_string())
    })
}

/// Fresh primary + rotated-previous checkpoint pair in a per-case
/// scratch directory: the primary gets `damaged`, the `.1` snapshot
/// stays good — the exact disk state a crash-during-write leaves.
fn corrupt_pair(damaged: &[u8]) -> (PathBuf, PathBuf) {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gevo-chaos-prop-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let primary = dir.join("run.ckpt.json");
    std::fs::write(previous_path(&primary), sealed_checkpoint()).expect("write good snapshot");
    std::fs::write(&primary, damaged).expect("write damaged snapshot");
    (dir, primary)
}

proptest! {
    // Pinned case count and generation seed, like tests/proptests.rs:
    // tier-1 CI must draw the same cases every run.
    #![proptest_config(ProptestConfig::with_cases(32).with_rng_seed(0x39C4_0221))]

    /// Flipping any single byte of a sealed checkpoint is detected by
    /// the CRC/footer validation, and rollback recovers the previous
    /// snapshot bit-identically — never a panic, never silent
    /// acceptance of damaged state.
    #[test]
    fn single_byte_flip_is_detected_and_rolled_back(pos in 0usize..1 << 20, mask in 0u8..255) {
        let good = sealed_checkpoint().as_bytes().to_vec();
        let mut damaged = good.clone();
        let pos = pos % damaged.len();
        damaged[pos] ^= mask + 1; // a zero mask would leave the byte intact
        let (dir, primary) = corrupt_pair(&damaged);

        prop_assert!(
            load_state(&primary).is_err(),
            "a flipped byte at {pos} must not load as a valid checkpoint"
        );
        let recovered = load_state_with_rollback(&primary);
        prop_assert!(
            recovered.is_ok(),
            "rollback failed: {:?}",
            recovered.as_ref().err()
        );
        let (state, note) = recovered.expect("just checked");
        prop_assert!(note.is_some(), "recovery must report the rollback");
        let body = seal(&state.to_json().to_string());
        // Rolled-back state must equal the pristine snapshot.
        prop_assert_eq!(body.as_bytes(), &good[..]);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncating a sealed checkpoint at any point — including exactly
    /// at the body/footer boundary — is detected and rolled back.
    #[test]
    fn truncation_is_detected_and_rolled_back(cut in 0usize..1 << 20) {
        let good = sealed_checkpoint().as_bytes().to_vec();
        let cut = cut % good.len(); // strictly shorter than the original
        let (dir, primary) = corrupt_pair(&good[..cut]);

        prop_assert!(
            load_state(&primary).is_err(),
            "a checkpoint truncated to {cut} bytes must not load"
        );
        let recovered = load_state_with_rollback(&primary);
        prop_assert!(
            recovered.is_ok(),
            "rollback failed: {:?}",
            recovered.as_ref().err()
        );
        let (state, note) = recovered.expect("just checked");
        prop_assert!(note.is_some(), "recovery must report the rollback");
        let body = seal(&state.to_json().to_string());
        // Rolled-back state must equal the pristine snapshot.
        prop_assert_eq!(body.as_bytes(), &good[..]);
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------
// gevo-serve supervision, across real process boundaries.
// ---------------------------------------------------------------------

fn gevo_serve() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_gevo-serve"));
    for knob in [
        "GEVO_CHAOS",
        "GEVO_JOB_DEADLINE",
        "GEVO_JOB_RETRIES",
        "GEVO_JOB_BACKOFF_MS",
    ] {
        cmd.env_remove(knob);
    }
    cmd
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gevo-chaos-serve-{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A malformed submit is rejected with one `error` event per bad
/// field — never silently coerced to defaults, never accepted.
#[test]
fn malformed_submit_gets_one_error_per_field() {
    let dir = scratch("bad-submit");
    let mut server = gevo_serve()
        .arg("--state-dir")
        .arg(&dir)
        .arg("--exit-when-idle")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn gevo-serve");
    let mut stdin = server.stdin.take().expect("server stdin");
    writeln!(
        stdin,
        "{{\"op\":\"submit\",\"id\":\"bad\",\"workload\":\"adept-v0\",\
         \"pop\":\"eight\",\"gens\":true,\"seed\":3}}"
    )
    .expect("write submit");
    drop(stdin);
    let out = server.wait_with_output().expect("server exits");
    assert!(out.status.success());
    let events = String::from_utf8(out.stdout).expect("utf8 events");
    // Field names arrive inside the message string, so their quotes
    // are JSON-escaped on the wire.
    for field in [r#"field \"pop\""#, r#"field \"gens\""#] {
        assert!(
            events
                .lines()
                .any(|l| l.contains("\"event\":\"error\"") && l.contains(field)),
            "expected a per-field error naming {field}: {events}"
        );
    }
    assert!(
        !events.contains("\"event\":\"accepted\""),
        "a malformed submit must not be accepted: {events}"
    );
    assert!(
        !dir.join("bad.job.json").exists(),
        "a rejected submit must not persist a job record"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Reads events until `want` generation events have been seen;
/// returns the generation number of the first one.
fn wait_for_generations(reader: &mut impl BufRead, want: usize) -> u64 {
    let mut first_gen = None;
    let mut seen = 0;
    let mut line = String::new();
    while seen < want {
        line.clear();
        let n = reader.read_line(&mut line).expect("read server event");
        assert!(n > 0, "server exited before generation event {want}");
        assert!(
            !line.contains("\"event\":\"error\""),
            "server reported an error: {line}"
        );
        if line.contains("\"event\":\"generation\"") {
            seen += 1;
            if first_gen.is_none() {
                first_gen = Some(parse_gen(&line));
            }
        }
    }
    first_gen.expect("at least one generation event")
}

/// Pulls the `"gen":N` field out of an event line.
fn parse_gen(line: &str) -> u64 {
    let tail = &line[line.find("\"gen\":").expect("gen field") + 6..];
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().expect("gen is an integer")
}

/// The graceful `shutdown` op suspends in-flight jobs to a checkpoint
/// and the next start resumes them — from where they left off, not
/// from generation 0 — to a result byte-identical to an uninterrupted
/// `search_job` run of the same spec.
#[test]
fn shutdown_suspends_and_restart_resumes_not_restarts() {
    let dir = scratch("shutdown");
    let (pop, gens, seed) = (8, 10, 5);

    // The fault-free reference line for the identical spec.
    let straight = {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_search_job"));
        cmd.env_remove("GEVO_CHAOS")
            .env("GEVO_POP", pop.to_string())
            .env("GEVO_GENS", gens.to_string())
            .env("GEVO_SEED", seed.to_string())
            .env("GEVO_ISLANDS", "1")
            .env("GEVO_THREADS", "1")
            .args(["--workload", "adept-v0"]);
        let out = cmd.output().expect("run search_job");
        assert!(out.status.success());
        String::from_utf8(out.stdout)
            .expect("utf8")
            .trim()
            .to_string()
    };

    // Session one: cadence too sparse to ever checkpoint (1000), so the
    // only checkpoint that can exist afterwards is the one `shutdown`
    // writes while suspending.
    let mut server = gevo_serve()
        .arg("--state-dir")
        .arg(&dir)
        .env("GEVO_CHECKPOINT_EVERY", "1000")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn gevo-serve");
    let mut stdin = server.stdin.take().expect("server stdin");
    writeln!(
        stdin,
        "{{\"op\":\"submit\",\"id\":\"s1\",\"workload\":\"adept-v0\",\
         \"pop\":{pop},\"gens\":{gens},\"seed\":{seed}}}"
    )
    .expect("submit job");
    stdin.flush().expect("flush submit");
    let mut reader = BufReader::new(server.stdout.take().expect("server stdout"));
    wait_for_generations(&mut reader, 2);
    writeln!(stdin, "{{\"op\":\"shutdown\"}}").expect("send shutdown");
    drop(stdin);
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut reader, &mut rest).expect("drain events");
    assert!(server.wait().expect("reap server").success());
    assert!(
        rest.contains("\"event\":\"suspended\""),
        "shutdown must suspend the in-flight job: {rest}"
    );
    assert!(
        dir.join("s1.ckpt.json").exists(),
        "the suspended job must leave its shutdown checkpoint"
    );
    assert!(
        !dir.join("s1.done.json").exists(),
        "the job must not have finished before the shutdown"
    );

    // Session two: recovery resumes the suspended job. Its first
    // generation event must pick up past the suspension point — a
    // server that restarted from scratch would start at generation 0.
    let mut restart = gevo_serve()
        .arg("--state-dir")
        .arg(&dir)
        .arg("--exit-when-idle")
        .env("GEVO_CHECKPOINT_EVERY", "1000")
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .spawn()
        .expect("restart gevo-serve");
    let mut reader = BufReader::new(restart.stdout.take().expect("server stdout"));
    let first_gen = wait_for_generations(&mut reader, 1);
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut reader, &mut rest).expect("drain events");
    assert!(restart.wait().expect("reap server").success());
    assert!(
        first_gen >= 2,
        "resume must continue past the suspension point, got generation {first_gen}"
    );
    assert!(
        rest.contains("\"event\":\"done\""),
        "the resumed job must complete: {rest}"
    );
    assert_eq!(
        std::fs::read_to_string(dir.join("s1.done.json"))
            .expect("done file")
            .trim(),
        straight,
        "suspend + resume must reproduce the uninterrupted result byte-for-byte"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A blown per-job deadline fails the attempt loudly; with retries
/// exhausted the job lands in the error state — it does not hang, and
/// it does not fabricate a result.
#[test]
fn blown_deadline_fails_the_job() {
    let dir = scratch("deadline");
    let mut server = gevo_serve()
        .arg("--state-dir")
        .arg(&dir)
        .arg("--exit-when-idle")
        .env("GEVO_JOB_RETRIES", "0")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn gevo-serve");
    let mut stdin = server.stdin.take().expect("server stdin");
    writeln!(
        stdin,
        "{{\"op\":\"submit\",\"id\":\"d1\",\"workload\":\"adept-v0\",\
         \"pop\":6,\"gens\":4,\"seed\":1,\"deadline_s\":0}}"
    )
    .expect("submit job");
    drop(stdin);
    let out = server.wait_with_output().expect("server exits");
    assert!(out.status.success());
    let events = String::from_utf8(out.stdout).expect("utf8 events");
    assert!(
        events.contains("\"event\":\"failed\"") && events.contains("deadline 0s exceeded"),
        "the blown deadline must emit a failed event: {events}"
    );
    assert!(
        events.contains("giving up after 1 attempts"),
        "exhausted retries must surface in the final error: {events}"
    );
    assert!(
        !events.contains("\"event\":\"done\""),
        "a deadline-failed job must not report done: {events}"
    );
    assert!(
        !dir.join("d1.done.json").exists(),
        "a deadline-failed job must not persist a result"
    );
    std::fs::remove_dir_all(&dir).ok();
}
