//! Interleaved A/B comparison of interpreter launch paths (ISSUE 4's
//! tentpole measurement), replacing the earlier one-sided criterion
//! groups: wall-clock on this box drifts by tens of percent over
//! minutes, so only interleaved comparisons are valid
//! (`gevo_bench::ab`, methodology in EXPERIMENTS.md).
//!
//! Per launch case (`gevo_bench::cases`), two in-process contrasts:
//!
//! * **source vs compiled** — `Gpu::launch` pays verification, CFG
//!   construction and operand lowering on every call; compiled launches
//!   pay none of it. The delta is the compile-once win (PR 3).
//! * **fresh vs reused scratch** — both sides run `launch_compiled_in`,
//!   one constructing a new `ExecScratch` every launch (the allocation
//!   churn the persistent scratch removes), one reusing a single
//!   scratch (the zero-allocation steady state). The delta is the
//!   persistent-scratch part of ISSUE 4's win.
//!
//! Plus `simcov_eval`: one full `SIMCoV` fitness evaluation (140
//! launches) timed one-sided, for the ns/launch headline.
//!
//! The full before/after comparison — which needs two *builds*, not two
//! closures — comes from interleaving `launch_ns` processes of the old
//! and new commit; see EXPERIMENTS.md.

use gevo_bench::ab::{interleaved_ab, AbReport};
use gevo_bench::cases;
use gevo_engine::Workload;
use gevo_gpu::{ExecScratch, Gpu, KernelArg, LaunchConfig};
use gevo_ir::Kernel;
use std::hint::black_box;
use std::time::Instant;

fn print_report(case: &str, contrast: &str, rep: &AbReport) {
    println!(
        "{case:>14} | {contrast:<22} | A {a:>10.0} ns | B {b:>10.0} ns | B wins {pct:>6.1}% \
         ({rounds}x{inner})",
        a = rep.a_ns,
        b = rep.b_ns,
        pct = rep.b_improvement_pct(),
        rounds = rep.rounds,
        inner = rep.inner,
    );
}

type Setup = fn() -> (Gpu, Kernel, LaunchConfig, Vec<KernelArg>);

fn bench_launch_case(name: &str, setup: Setup, rounds: usize, inner: usize) {
    // Contrast 1: source (verify+compile per call) vs compiled.
    // Separate devices per side so the closures don't fight over one
    // &mut Gpu; both see identical kernels, geometry and (after the
    // warmup burst) identical warm L2 state.
    {
        let (mut gpu_a, kernel, cfg, args) = setup();
        let (mut gpu_b, _, _, _) = setup();
        let compiled = gpu_b.compile(&kernel).expect("pristine kernel compiles");
        let rep = interleaved_ab(
            rounds,
            inner,
            || {
                black_box(gpu_a.launch(&kernel, cfg, &args).expect("launch"));
            },
            || {
                black_box(
                    gpu_b
                        .launch_compiled(&compiled, cfg, &args)
                        .expect("compiled launch"),
                );
            },
        );
        print_report(name, "source vs compiled", &rep);
    }

    // Contrast 2: fresh ExecScratch per launch vs one reused scratch.
    {
        let (mut gpu_a, kernel, cfg, args) = setup();
        let (mut gpu_b, _, _, _) = setup();
        let compiled = gpu_a.compile(&kernel).expect("pristine kernel compiles");
        let mut reused = ExecScratch::new();
        let rep = interleaved_ab(
            rounds,
            inner,
            || {
                let mut fresh = ExecScratch::new();
                black_box(
                    gpu_a
                        .launch_compiled_in(&compiled, cfg, &args, &mut fresh)
                        .expect("fresh-scratch launch"),
                );
            },
            || {
                black_box(
                    gpu_b
                        .launch_compiled_in(&compiled, cfg, &args, &mut reused)
                        .expect("reused-scratch launch"),
                );
            },
        );
        print_report(name, "fresh vs reused scratch", &rep);
    }
}

#[allow(clippy::cast_precision_loss)]
fn bench_simcov_eval() {
    let (w, compiled, launches) = cases::simcov_eval_case();
    // Warm the workload's scratch pool, then time steady-state evals.
    for _ in 0..2 {
        assert!(w.evaluate_compiled(&compiled, 0).is_valid());
    }
    let iters = 12;
    let start = Instant::now();
    for _ in 0..iters {
        black_box(w.evaluate_compiled(&compiled, 0));
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
    println!(
        "{:>14} | {:<22} | {:>10.0} ns/eval | {:>8.0} ns/launch",
        "simcov_eval",
        "steady state (reused)",
        ns,
        ns / launches
    );
}

fn main() {
    println!("interleaved A/B launch benchmarks (median of per-round ratios)");
    bench_launch_case("adept_v0", cases::adept_v0_case as Setup, 7, 300);
    bench_launch_case("simcov_cdiff", cases::simcov_cdiff_case as Setup, 7, 400);
    bench_simcov_eval();
}
