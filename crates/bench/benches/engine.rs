//! Criterion micro-benchmarks of the evolutionary engine: patch
//! application, mutation sampling and full fitness evaluations (the unit
//! of work the GA performs thousands of times per run).

use criterion::{criterion_group, criterion_main, Criterion};
use gevo_engine::{Evaluator, MutationSpace, MutationWeights, Patch, Workload};
use gevo_workloads::adept::{AdeptConfig, AdeptWorkload, Version};
use gevo_workloads::simcov::{SimcovConfig, SimcovWorkload};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    let v1 = AdeptWorkload::new(AdeptConfig::scaled(Version::V1));
    let space = MutationSpace::new(v1.kernels(), MutationWeights::default());

    g.bench_function("mutation_sampling", |bencher| {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        bencher.iter(|| black_box(space.sample(&mut rng)));
    });

    g.bench_function("patch_apply_16_edits", |bencher| {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut p = Patch::empty();
        for _ in 0..16 {
            space.mutate(&mut p, &mut rng);
        }
        bencher.iter(|| black_box(p.apply(v1.kernels())));
    });

    g.bench_function("fitness_eval_adept_v1", |bencher| {
        bencher.iter(|| {
            // Bypass the memo cache: evaluate through the workload.
            black_box(v1.evaluate(v1.kernels(), 0))
        });
    });

    let v0 = AdeptWorkload::new(AdeptConfig::scaled(Version::V0));
    g.bench_function("fitness_eval_adept_v0", |bencher| {
        bencher.iter(|| black_box(v0.evaluate(v0.kernels(), 0)));
    });

    let sc = SimcovWorkload::new(SimcovConfig::scaled());
    g.sample_size(20);
    g.bench_function("fitness_eval_simcov", |bencher| {
        bencher.iter(|| black_box(sc.evaluate(sc.kernels(), 0)));
    });

    g.bench_function("cached_eval_adept_v1", |bencher| {
        let ev = Evaluator::new(&v1);
        let _ = ev.evaluate(&Patch::empty());
        bencher.iter(|| black_box(ev.evaluate(&Patch::empty())));
    });

    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
