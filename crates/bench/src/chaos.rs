//! Deterministic fault injection for the recovery layer (DESIGN.md
//! §3.9).
//!
//! A [`FaultPlan`] names *exactly when* each fault fires — a checkpoint
//! write index, an evaluation ordinal — so every injected failure is
//! reproducible from the plan string alone. The plan for a process
//! comes from the `GEVO_CHAOS` environment variable, a comma-separated
//! list:
//!
//! | element | fault |
//! |---|---|
//! | `flip@K` | XOR one byte of the checkpoint file after write `K` (0-based) |
//! | `truncate@K` | truncate the checkpoint file to half after write `K` |
//! | `panic@N` | panic the driving worker at the first step boundary with ≥ `N` evals |
//! | `evalpanic@N` | panic *inside* the `N`-th evaluation (1-based) |
//! | `nodelta@N` | report delta-patching unsupported from the `N`-th evaluation on |
//! | `seed=S` | seed for corruption-offset derivation (default 1) |
//!
//! The faults split by where they land, which decides what recovery
//! guarantees:
//!
//! * `flip`/`truncate`/`panic` strike *outside* the evaluation
//!   isolation — storage and the driving worker. Recovery is
//!   resume-from-checkpoint (plus rollback to the rotated `.1`
//!   snapshot for corruption), and because the search trajectory is a
//!   deterministic function of the checkpointed state, the recovered
//!   run finishes **byte-identical** to a fault-free one. The
//!   `chaos_check` bin asserts exactly that.
//! * `evalpanic` strikes *inside* an evaluation: the engine's
//!   `catch_unwind` boundary scores it worst-fitness and quarantines
//!   the variant. That legitimately changes the trajectory (one mutant
//!   really did fail), so the asserted contract is "survives,
//!   quarantines, completes" — not byte-identity with a run where the
//!   mutant passed.
//! * `nodelta` forces the delta-compilation chain to fall back to full
//!   recompiles — which is result-invisible by the §3.7 contract, so
//!   byte-identity *is* asserted for it.
//!
//! Each fault fires at most once per process (the in-process `fired`
//! latch); a restarted process decides via its own `GEVO_CHAOS` whether
//! the fault recurs, which is how the chaos driver models
//! fail-once-then-recover without hidden state.

use gevo_engine::{EvalOutcome, Workload};
use gevo_gpu::CompiledKernel;
use gevo_ir::Kernel;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// One injected fault with its deterministic trigger point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// XOR one byte of the checkpoint file after write `write`.
    CkptFlip {
        /// 0-based checkpoint-write index this fault strikes.
        write: usize,
    },
    /// Truncate the checkpoint file to half its length after write
    /// `write`.
    CkptTruncate {
        /// 0-based checkpoint-write index this fault strikes.
        write: usize,
    },
    /// Panic the driving worker at the first step boundary where at
    /// least `evals` evaluations have been performed.
    WorkerPanic {
        /// Evaluation-count threshold.
        evals: usize,
    },
    /// Panic inside evaluation number `eval` (1-based call ordinal).
    EvalPanic {
        /// 1-based evaluation ordinal.
        eval: usize,
    },
    /// Force [`Workload::supports_delta_patch`] to `false` from
    /// evaluation `eval` on.
    DeltaOff {
        /// 1-based evaluation ordinal the fallback starts at.
        eval: usize,
    },
}

/// A parsed, seeded fault plan.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed deriving corruption byte offsets (so two plans with the
    /// same faults but different seeds damage different bytes).
    pub seed: u64,
    /// The faults, in plan order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Parses a `GEVO_CHAOS` plan string (see the module docs for the
    /// grammar). The empty string parses to the empty plan.
    ///
    /// # Errors
    /// Returns a message naming the malformed element.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            seed: 1,
            faults: Vec::new(),
        };
        for element in spec.split(',') {
            let element = element.trim();
            if element.is_empty() {
                continue;
            }
            if let Some(seed) = element.strip_prefix("seed=") {
                plan.seed = seed
                    .parse()
                    .map_err(|e| format!("chaos plan: bad seed {seed:?}: {e}"))?;
                continue;
            }
            let (kind, at) = element
                .split_once('@')
                .ok_or_else(|| format!("chaos plan: expected kind@N, got {element:?}"))?;
            let n: usize = at
                .parse()
                .map_err(|e| format!("chaos plan: bad trigger in {element:?}: {e}"))?;
            plan.faults.push(match kind {
                "flip" => Fault::CkptFlip { write: n },
                "truncate" => Fault::CkptTruncate { write: n },
                "panic" => Fault::WorkerPanic { evals: n },
                "evalpanic" => Fault::EvalPanic { eval: n },
                "nodelta" => Fault::DeltaOff { eval: n },
                other => return Err(format!("chaos plan: unknown fault kind {other:?}")),
            });
        }
        Ok(plan)
    }
}

/// splitmix64 — the corruption-offset derivation. Deterministic in
/// (seed, length), so the same plan damages the same byte of the same
/// file every time.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The process-wide active plan: parsed once from `GEVO_CHAOS`, with a
/// write counter and one fired-latch per fault.
struct Active {
    plan: FaultPlan,
    writes: AtomicUsize,
    fired: Vec<AtomicBool>,
}

fn active() -> Option<&'static Active> {
    static CELL: OnceLock<Option<Active>> = OnceLock::new();
    CELL.get_or_init(|| {
        let spec = std::env::var("GEVO_CHAOS").ok()?;
        let plan = match FaultPlan::parse(&spec) {
            Ok(plan) if plan.faults.is_empty() => return None,
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("gevo: ignoring GEVO_CHAOS: {e}");
                return None;
            }
        };
        let fired = plan.faults.iter().map(|_| AtomicBool::new(false)).collect();
        Some(Active {
            plan,
            writes: AtomicUsize::new(0),
            fired,
        })
    })
    .as_ref()
}

/// The plan in force for this process, if any (`GEVO_CHAOS`).
#[must_use]
pub fn plan() -> Option<&'static FaultPlan> {
    active().map(|a| &a.plan)
}

/// Storage-fault hook, called by
/// [`crate::checkpoint::write_checkpoint`] after each durable write:
/// when the plan has an I/O fault for this write index, the freshly
/// written file is damaged in place — exactly what a torn write or bit
/// rot would leave for the next resume to detect and roll back from.
pub fn on_checkpoint_written(path: &Path) {
    let Some(active) = active() else {
        return;
    };
    let idx = active.writes.fetch_add(1, Ordering::SeqCst);
    for (i, fault) in active.plan.faults.iter().enumerate() {
        let corrupt = match fault {
            Fault::CkptFlip { write } | Fault::CkptTruncate { write } => *write == idx,
            _ => false,
        };
        if !corrupt || active.fired[i].swap(true, Ordering::SeqCst) {
            continue;
        }
        let Ok(mut bytes) = std::fs::read(path) else {
            continue;
        };
        if bytes.is_empty() {
            continue;
        }
        match fault {
            Fault::CkptFlip { .. } => {
                #[allow(clippy::cast_possible_truncation)]
                let at = (splitmix64(active.plan.seed ^ bytes.len() as u64) % bytes.len() as u64)
                    as usize;
                bytes[at] ^= 0xFF;
            }
            Fault::CkptTruncate { .. } => bytes.truncate(bytes.len() / 2),
            _ => unreachable!("filtered above"),
        }
        // Deliberately NOT atomic: this models the damage the atomic
        // write path exists to prevent.
        let _ = std::fs::write(path, &bytes);
        eprintln!(
            "gevo: chaos damaged checkpoint {} (write {idx}, {fault:?})",
            path.display()
        );
    }
}

/// Worker-fault hook, called by the search drivers at each step
/// boundary (after any due checkpoint): panics when the plan says this
/// worker dies here. The panic unwinds the *driver*, not an
/// evaluation — `gevo-serve` catches it and retries from the last
/// checkpoint; `search_job` dies and is re-run by its caller.
///
/// # Panics
/// That is the point.
pub fn maybe_worker_panic(evals: usize) {
    let Some(active) = active() else {
        return;
    };
    for (i, fault) in active.plan.faults.iter().enumerate() {
        let Fault::WorkerPanic { evals: at } = fault else {
            continue;
        };
        // Not an assertion: the panic IS the injected fault.
        #[allow(clippy::manual_assert)]
        if evals >= *at && !active.fired[i].swap(true, Ordering::SeqCst) {
            panic!("chaos: injected worker panic at {evals} evals (trigger {at})");
        }
    }
}

/// Wraps a workload with the plan's evaluation-level faults
/// ([`Fault::EvalPanic`], [`Fault::DeltaOff`]); a plan without any is a
/// free pass-through. The wrapper keeps the inner workload's name, so
/// checkpoints and job files stay interchangeable with unwrapped runs.
#[must_use]
pub fn wrap(inner: Box<dyn Workload + Send>) -> Box<dyn Workload + Send> {
    let Some(plan) = plan() else {
        return inner;
    };
    let eval_panic = plan.faults.iter().find_map(|f| match f {
        Fault::EvalPanic { eval } => Some(*eval),
        _ => None,
    });
    let delta_off = plan.faults.iter().find_map(|f| match f {
        Fault::DeltaOff { eval } => Some(*eval),
        _ => None,
    });
    if eval_panic.is_none() && delta_off.is_none() {
        return inner;
    }
    Box::new(ChaosWorkload {
        inner,
        calls: AtomicUsize::new(0),
        panic_fired: AtomicBool::new(false),
        eval_panic,
        delta_off,
    })
}

/// A workload wrapper injecting evaluation-level faults (the shape of
/// [`gevo_engine::NoDelta`], plus call counting).
struct ChaosWorkload {
    inner: Box<dyn Workload + Send>,
    /// Evaluation calls seen so far (`evaluate` + `evaluate_compiled`).
    calls: AtomicUsize,
    panic_fired: AtomicBool,
    eval_panic: Option<usize>,
    delta_off: Option<usize>,
}

impl ChaosWorkload {
    /// Counts one evaluation; panics if this is the planned ordinal.
    /// Runs inside [`gevo_engine::Evaluator::evaluate`]'s
    /// `catch_unwind`, which is the boundary under test.
    fn bump(&self) {
        let call = self.calls.fetch_add(1, Ordering::SeqCst) + 1;
        // Not an assertion: the panic IS the injected fault.
        #[allow(clippy::manual_assert)]
        if self.eval_panic == Some(call) && !self.panic_fired.swap(true, Ordering::SeqCst) {
            panic!("chaos: injected evaluation panic at eval {call}");
        }
    }
}

impl Workload for ChaosWorkload {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn kernels(&self) -> &[Kernel] {
        self.inner.kernels()
    }
    fn evaluate(&self, kernels: &[Kernel], eval_seed: u64) -> EvalOutcome {
        self.bump();
        self.inner.evaluate(kernels, eval_seed)
    }
    fn compile(&self, kernels: &[Kernel]) -> Option<Result<Vec<CompiledKernel>, String>> {
        self.inner.compile(kernels)
    }
    fn evaluate_compiled(&self, compiled: &[CompiledKernel], eval_seed: u64) -> EvalOutcome {
        self.bump();
        self.inner.evaluate_compiled(compiled, eval_seed)
    }
    fn supports_delta_patch(&self) -> bool {
        if let Some(at) = self.delta_off {
            if self.calls.load(Ordering::SeqCst) + 1 >= at {
                return false;
            }
        }
        self.inner.supports_delta_patch()
    }
    fn hotspot_profile(&self) -> Option<Vec<Vec<u64>>> {
        // Forwarded without `bump()`: the profile evaluation bypasses
        // the [`gevo_engine::Evaluator`] by design, so it must not
        // consume chaos eval ordinals either — a plan's `evalpanic@k`
        // has to mean the same k-th *search* evaluation on both arms.
        self.inner.hotspot_profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parses_every_kind() {
        let plan = FaultPlan::parse("seed=7,flip@1,truncate@0,panic@9,evalpanic@3,nodelta@2")
            .expect("valid plan");
        assert_eq!(plan.seed, 7);
        assert_eq!(
            plan.faults,
            vec![
                Fault::CkptFlip { write: 1 },
                Fault::CkptTruncate { write: 0 },
                Fault::WorkerPanic { evals: 9 },
                Fault::EvalPanic { eval: 3 },
                Fault::DeltaOff { eval: 2 },
            ]
        );
        assert_eq!(FaultPlan::parse("").expect("empty ok").faults, vec![]);
    }

    #[test]
    fn plan_rejects_malformed_elements() {
        for bad in ["flip", "flip@x", "explode@3", "seed=abc"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parse_is_deterministic() {
        let a = FaultPlan::parse("seed=3,flip@2").unwrap();
        let b = FaultPlan::parse("seed=3,flip@2").unwrap();
        assert_eq!(a, b);
        assert_eq!(splitmix64(3 ^ 0x64), splitmix64(3 ^ 0x64));
        assert_ne!(splitmix64(3), splitmix64(4));
    }
}
