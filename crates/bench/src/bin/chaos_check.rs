//! `chaos_check` — drives the shipped binaries under seeded fault
//! plans and asserts the recovery invariant (DESIGN.md §3.9):
//!
//! > A search interrupted by checkpoint corruption, a worker panic or a
//! > kill, then recovered through rollback/retry/resume, finishes
//! > **byte-identical** to a fault-free run; an *evaluation* panic is
//! > quarantined and scored worst-fitness without aborting the search.
//!
//! Scenarios (each compared against one clean `search_job` baseline):
//!
//! 1. `flip@1` / `truncate@1` — the checkpoint written at the
//!    `GEVO_STOP_AFTER` kill point is corrupted; the rerun must detect
//!    it, roll back to the rotated `.1` snapshot and still match.
//! 2. `panic@1` — the driving worker panics at a step boundary; the
//!    rerun resumes from the last checkpoint and must match.
//! 3. `gevo-serve` with `panic@1` — the in-process supervisor retries
//!    from the checkpoint (`failed` event then `done`); the job's
//!    `done.json` must match a serve run without faults.
//! 4. `evalpanic@3` + `GEVO_QUARANTINE` — the search completes (exit
//!    0) and the offending variant lands in quarantine. No byte
//!    comparison: a mutant that really fails legitimately changes the
//!    trajectory.
//! 5. `nodelta@2` — forced delta-fallback must be result-invisible
//!    (byte-identical, §3.7 contract).
//!
//! ```text
//! chaos_check [--seed S] [--workload NAME] [--repro <file>.quarantine.json]
//! ```
//!
//! `--seed` seeds the fault plans' corruption-offset derivation (any
//! seed must recover — CI runs one, developers can sweep).
//! `--repro` replays a quarantined variant in isolation and reports
//! its outcome. Exits non-zero on any violated invariant.

use gevo_engine::{Evaluator, QuarantineRecord};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn arg_value(flag: &str) -> Option<String> {
    let prefix = format!("{flag}=");
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
    }
    None
}

/// Locates a sibling binary in the same target directory as this one.
fn sibling(name: &str) -> PathBuf {
    let me = std::env::current_exe().expect("own path");
    me.parent().expect("target dir").join(name)
}

/// Base command for a `search_job` run: fixed small budget, one
/// thread, and every chaos/checkpoint knob scrubbed so only what a
/// scenario sets explicitly is in force.
fn search_job(workload: &str, seed: u64) -> Command {
    let mut cmd = Command::new(sibling("search_job"));
    for knob in [
        "GEVO_CHAOS",
        "GEVO_CHECKPOINT",
        "GEVO_STOP_AFTER",
        "GEVO_QUARANTINE",
        "GEVO_POP",
        "GEVO_GENS",
        "GEVO_ISLANDS",
    ] {
        cmd.env_remove(knob);
    }
    cmd.env("GEVO_POP", "6")
        .env("GEVO_GENS", "4")
        .env("GEVO_SEED", seed.to_string())
        .env("GEVO_ISLANDS", "2")
        .env("GEVO_MIGRATION", "2")
        .env("GEVO_THREADS", "1")
        .env("GEVO_CHECKPOINT_EVERY", "1")
        .args(["--workload", workload]);
    cmd
}

fn run(cmd: &mut Command) -> Output {
    cmd.output().expect("spawn child binary")
}

fn stdout_line(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).trim().to_string()
}

/// One scenario verdict, tallied into the process exit code.
struct Verdict {
    name: &'static str,
    ok: bool,
    detail: String,
}

fn check(name: &'static str, ok: bool, detail: impl Into<String>) -> Verdict {
    let detail = detail.into();
    println!("{} {name}: {detail}", if ok { "PASS" } else { "FAIL" });
    Verdict { name, ok, detail }
}

/// Scenario 1/2: kill `search_job` deterministically (`GEVO_STOP_AFTER`
/// for I/O faults, the injected worker panic otherwise), then re-run
/// the same command without the fault plan and demand the baseline
/// line.
fn recovers_byte_identical(
    name: &'static str,
    dir: &Path,
    workload: &str,
    seed: u64,
    plan: &str,
    stop_after: Option<usize>,
    baseline: &str,
) -> Verdict {
    let ckpt = dir.join(format!("{name}.ckpt.json"));
    let mut first = search_job(workload, seed);
    first.env("GEVO_CHECKPOINT", &ckpt).env("GEVO_CHAOS", plan);
    if let Some(k) = stop_after {
        first.env("GEVO_STOP_AFTER", k.to_string());
    }
    let killed = run(&mut first);
    let expected_kill = match stop_after {
        Some(_) => killed.status.code() == Some(3),
        None => !killed.status.success(),
    };
    if !expected_kill {
        return check(
            name,
            false,
            format!("first run was not interrupted (status {:?})", killed.status),
        );
    }
    // Recovery: same command, no fault plan (the fault happened once).
    let mut second = search_job(workload, seed);
    second.env("GEVO_CHECKPOINT", &ckpt);
    let recovered = run(&mut second);
    if !recovered.status.success() {
        return check(
            name,
            false,
            format!(
                "recovery run failed: {}",
                String::from_utf8_lossy(&recovered.stderr)
            ),
        );
    }
    let line = stdout_line(&recovered);
    check(
        name,
        line == baseline,
        if line == baseline {
            "recovered result byte-identical to fault-free run".to_string()
        } else {
            format!("result diverged:\n  clean: {baseline}\n  chaos: {line}")
        },
    )
}

/// Scenario 3: the serve supervisor's retry-from-checkpoint. Runs
/// `gevo-serve --exit-when-idle` twice over the same submission — once
/// clean, once with an injected worker panic — and compares the
/// durable `done.json` files byte-for-byte, plus demands the `failed`
/// retry event actually appeared.
fn serve_retries_byte_identical(dir: &Path, workload: &str, seed: u64) -> Verdict {
    let name = "serve-retry";
    let submit = format!(
        "{{\"op\":\"submit\",\"id\":\"c1\",\"workload\":\"{workload}\",\"pop\":6,\"gens\":4,\"seed\":{seed}}}\n"
    );
    let serve_once = |state_dir: &Path, plan: Option<&str>| -> Output {
        let mut cmd = Command::new(sibling("gevo-serve"));
        cmd.env_remove("GEVO_CHAOS")
            .env_remove("GEVO_CHECKPOINT")
            .env_remove("GEVO_STOP_AFTER")
            .env("GEVO_CHECKPOINT_EVERY", "1")
            .env("GEVO_JOB_RETRIES", "2")
            .env("GEVO_JOB_BACKOFF_MS", "10")
            .env("GEVO_THREADS", "1")
            .args(["--state-dir"])
            .arg(state_dir)
            .arg("--exit-when-idle")
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped());
        if let Some(plan) = plan {
            cmd.env("GEVO_CHAOS", plan);
        }
        let mut child = cmd.spawn().expect("spawn gevo-serve");
        use std::io::Write;
        child
            .stdin
            .take()
            .expect("piped stdin")
            .write_all(submit.as_bytes())
            .expect("write submit");
        child.wait_with_output().expect("serve exits")
    };
    let clean_dir = dir.join("serve-clean");
    let chaos_dir = dir.join("serve-chaos");
    std::fs::create_dir_all(&clean_dir).expect("mkdir");
    std::fs::create_dir_all(&chaos_dir).expect("mkdir");
    let clean = serve_once(&clean_dir, None);
    let chaos = serve_once(&chaos_dir, Some("panic@1"));
    if !clean.status.success() || !chaos.status.success() {
        return check(name, false, "a serve process exited non-zero");
    }
    let chaos_events = String::from_utf8_lossy(&chaos.stdout).to_string();
    if !chaos_events.contains("\"event\":\"failed\"") {
        return check(name, false, "no failed event: the panic never fired");
    }
    let read = |d: &Path| std::fs::read(d.join("c1.done.json")).expect("done.json exists");
    let identical = read(&clean_dir) == read(&chaos_dir);
    check(
        name,
        identical,
        if identical {
            "retried job's done.json byte-identical to fault-free serve"
        } else {
            "done.json diverged between clean and retried serve"
        },
    )
}

/// Scenario 4: an evaluation panic must be caught, quarantined and
/// scored worst-fitness — the search completes.
fn eval_panic_is_quarantined(dir: &Path, workload: &str, seed: u64) -> Verdict {
    let name = "evalpanic-quarantine";
    let qdir = dir.join("quarantine");
    let mut cmd = search_job(workload, seed);
    cmd.env("GEVO_CHAOS", "evalpanic@3")
        .env("GEVO_QUARANTINE", &qdir);
    let out = run(&mut cmd);
    if !out.status.success() {
        return check(name, false, "search aborted instead of surviving the panic");
    }
    if stdout_line(&out).is_empty() {
        return check(name, false, "no result line printed");
    }
    let records: Vec<PathBuf> = std::fs::read_dir(&qdir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.to_string_lossy().ends_with(".quarantine.json"))
                .collect()
        })
        .unwrap_or_default();
    let [record] = records.as_slice() else {
        return check(
            name,
            false,
            format!(
                "expected exactly one quarantine record, found {}",
                records.len()
            ),
        );
    };
    match QuarantineRecord::load(record) {
        Ok(rec) if rec.reason.starts_with("panic:") => check(
            name,
            true,
            format!(
                "search survived; variant quarantined at {}",
                record.display()
            ),
        ),
        Ok(rec) => check(name, false, format!("unexpected reason {:?}", rec.reason)),
        Err(e) => check(name, false, e),
    }
}

/// Scenario 5: forced delta-fallback is result-invisible.
fn nodelta_is_result_invisible(workload: &str, seed: u64, baseline: &str) -> Verdict {
    let name = "nodelta-invisible";
    let mut cmd = search_job(workload, seed);
    cmd.env("GEVO_CHAOS", "nodelta@2");
    let out = run(&mut cmd);
    if !out.status.success() {
        return check(name, false, "run failed");
    }
    let line = stdout_line(&out);
    check(
        name,
        line == baseline,
        if line == baseline {
            "forced fallback byte-identical".to_string()
        } else {
            "forced fallback changed the result".to_string()
        },
    )
}

/// `--repro`: replay a quarantined variant in isolation.
fn repro(path: &Path) -> i32 {
    let rec = match QuarantineRecord::load(path) {
        Ok(rec) => rec,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let Some(w) = gevo_bench::workload_by_name(&rec.workload) else {
        eprintln!("unknown workload {:?} in record", rec.workload);
        return 2;
    };
    println!(
        "replaying {} on {} (seed {}, quarantined for: {})",
        path.display(),
        rec.workload,
        rec.eval_seed,
        rec.reason
    );
    let ev = Evaluator::new(w.as_ref());
    ev.set_eval_seed(rec.eval_seed);
    let outcome = ev.evaluate(&rec.patch);
    match (&outcome.fitness, &outcome.failure) {
        (Some(f), _) => println!("outcome: passes now (fitness {f})"),
        (None, Some(reason)) => println!("outcome: still fails ({reason})"),
        (None, None) => println!("outcome: invalid without a reason (engine bug)"),
    }
    0
}

fn main() {
    if let Some(path) = arg_value("--repro") {
        std::process::exit(repro(Path::new(&path)));
    }
    let seed: u64 = arg_value("--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let workload = arg_value("--workload").unwrap_or_else(|| "adept-v0".to_string());
    let dir = std::env::temp_dir().join(format!("gevo-chaos-{}-s{seed}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    println!("# chaos_check: workload {workload}, plan seed {seed}");
    let baseline_out = run(&mut search_job(&workload, seed));
    assert!(baseline_out.status.success(), "baseline run must succeed");
    let baseline = stdout_line(&baseline_out);

    // Checkpoint writes with GEVO_CHECKPOINT_EVERY=1 and STOP_AFTER=2:
    // write 0 after gen 1, write 1 at the stop point — so `@1` corrupts
    // the snapshot the rerun would prefer, forcing the rollback path.
    let flip = format!("seed={seed},flip@1");
    let trunc = format!("seed={seed},truncate@1");
    let verdicts = [
        recovers_byte_identical(
            "corrupt-flip",
            &dir,
            &workload,
            seed,
            &flip,
            Some(2),
            &baseline,
        ),
        recovers_byte_identical(
            "corrupt-truncate",
            &dir,
            &workload,
            seed,
            &trunc,
            Some(2),
            &baseline,
        ),
        recovers_byte_identical(
            "worker-panic",
            &dir,
            &workload,
            seed,
            "panic@1",
            None,
            &baseline,
        ),
        serve_retries_byte_identical(&dir, &workload, seed),
        eval_panic_is_quarantined(&dir, &workload, seed),
        nodelta_is_result_invisible(&workload, seed, &baseline),
    ];

    let failures: Vec<&Verdict> = verdicts.iter().filter(|v| !v.ok).collect();
    if failures.is_empty() {
        println!("# all {} chaos scenarios recovered", verdicts.len());
        std::fs::remove_dir_all(&dir).ok();
    } else {
        for f in &failures {
            eprintln!("chaos_check FAILED: {}: {}", f.name, f.detail);
        }
        eprintln!("# scratch kept for inspection: {}", dir.display());
        std::process::exit(1);
    }
}
